"""Differential tests: federated search ≡ single-engine search.

The identity contract of
:class:`~repro.core.query.federated.FederatedEngine` is that a search
over N corpus shards is *indistinguishable* from the same search on one
:class:`~repro.core.query.engine.XOntoRankEngine` over the whole
corpus:

* same ranked results (Dewey IDs, scores, keyword scores) for every
  shard count, sharding policy, and fan-out mode (sequential or
  thread pool);
* same persisted contents when each shard writes its own store, and
  the identity survives a store round-trip;
* a damaged shard store degrades only its own shard and still yields
  the identical global ranking.

Also covers the k-way merge itself (tie-breaking, truncation, empty
inputs) and shard counts exceeding the document count.
"""

from __future__ import annotations

import pytest

from repro.core.config import ALL_STRATEGIES, XRANK
from repro.core.query.engine import XOntoRankEngine
from repro.core.query.federated import (FederatedEngine, merge_ranked,
                                        shard_store_path)
from repro.core.query.results import QueryResult, rank_results
from repro.core.stats import FALLBACK_REBUILDS
from repro.storage.faults import FaultInjectingStore
from repro.storage.memory_store import MemoryStore
from repro.xmldoc.dewey import DeweyID
from repro.xmldoc.sharding import HASH, ROUND_ROBIN

QUERIES = ('"cardiac arrest" amiodarone',
           'myocardial infarction aspirin',
           'asthma')
SHARD_COUNTS = (1, 2, 4, 7)


def ranking(results):
    return [(result.dewey, result.score, result.keyword_scores)
            for result in results]


def _single(corpus, ontology, strategy):
    return XOntoRankEngine(
        corpus, ontology if strategy != XRANK else None,
        strategy=strategy)


def _federated(corpus, ontology, strategy, **kwargs):
    return FederatedEngine(
        corpus, ontology if strategy != XRANK else None,
        strategy=strategy, **kwargs)


@pytest.fixture(scope="module")
def single_engines(cda_corpus, synthetic_ontology):
    """One reference engine per strategy over the shared corpus."""
    return {strategy: _single(cda_corpus, synthetic_ontology, strategy)
            for strategy in ALL_STRATEGIES}


class TestSearchIdentity:
    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    def test_identical_across_shard_counts(self, strategy,
                                           single_engines, cda_corpus,
                                           synthetic_ontology):
        single = single_engines[strategy]
        expected = {query: ranking(single.search(query, k=10))
                    for query in QUERIES}
        for shards in SHARD_COUNTS:
            federated = _federated(cda_corpus, synthetic_ontology,
                                   strategy, shards=shards)
            for query in QUERIES:
                assert ranking(federated.search(query, k=10)) == \
                    expected[query], (strategy, shards, query)

    def test_thread_pool_fan_out_identical(self, single_engines,
                                           cda_corpus,
                                           synthetic_ontology):
        single = single_engines["relationships"]
        federated = _federated(cda_corpus, synthetic_ontology,
                               "relationships", shards=4,
                               shard_workers=3)
        for query in QUERIES:
            assert ranking(federated.search(query, k=10)) == \
                ranking(single.search(query, k=10))

    @pytest.mark.parametrize("policy", [HASH, ROUND_ROBIN])
    def test_policy_does_not_change_results(self, policy,
                                            single_engines, cda_corpus,
                                            synthetic_ontology):
        single = single_engines["graph"]
        federated = _federated(cda_corpus, synthetic_ontology, "graph",
                               shards=3, policy=policy)
        for query in QUERIES:
            assert ranking(federated.search(query, k=10)) == \
                ranking(single.search(query, k=10))

    def test_more_shards_than_documents(self, figure1_corpus,
                                        core_ontology):
        """Empty shards contribute nothing and break nothing."""
        single = _single(figure1_corpus, core_ontology,
                         "relationships")
        federated = _federated(figure1_corpus, core_ontology,
                               "relationships", shards=5)
        assert any(len(shard) == 0 for shard in federated.sharded)
        assert ranking(federated.search("asthma", k=10)) == \
            ranking(single.search("asthma", k=10))

    def test_global_dil_matches_single_engine(self, single_engines,
                                              cda_corpus,
                                              synthetic_ontology):
        from repro.ir.tokenizer import Keyword
        single = single_engines["taxonomy"]
        federated = _federated(cda_corpus, synthetic_ontology,
                               "taxonomy", shards=4)
        keyword = Keyword.from_text("amiodarone")
        assert federated.dil_for(keyword).encoded() == \
            single.dil_for(keyword).encoded()

    def test_explain_answered_by_owning_shard(self, single_engines,
                                              cda_corpus,
                                              synthetic_ontology):
        single = single_engines["relationships"]
        federated = _federated(cda_corpus, synthetic_ontology,
                               "relationships", shards=3)
        query = QUERIES[0]
        result = federated.search(query, k=1)[0]
        theirs = federated.explain(result, query)
        ours = single.explain(result, query)
        assert [item.describe() for item in theirs.evidence] == \
            [item.describe() for item in ours.evidence]


class TestStoreRoundTrip:
    def test_per_shard_stores_round_trip(self, cda_corpus,
                                         synthetic_ontology):
        shards = 3
        builder_side = _federated(cda_corpus, synthetic_ontology,
                                  "relationships", shards=shards)
        stores = [MemoryStore() for _ in range(shards)]
        vocabulary = {"asthma", "amiodarone", "aspirin"}
        built = builder_side.build_index(vocabulary=vocabulary,
                                         stores=stores)
        loader_side = _federated(cda_corpus, synthetic_ontology,
                                 "relationships", shards=shards)
        loaded = loader_side.load_index(stores)
        assert loaded == sum(
            len(list(store.keywords("relationships")))
            for store in stores)
        single = _single(cda_corpus, synthetic_ontology,
                         "relationships")
        reference = single.build_index(vocabulary=vocabulary)
        assert built.keywords() == reference.keywords()
        for key in reference.keywords():
            assert built.lists[key].encoded() == \
                reference.lists[key].encoded(), key
        for query in QUERIES:
            assert ranking(loader_side.search(query, k=10)) == \
                ranking(single.search(query, k=10))

    def test_store_count_must_match_shard_count(self, cda_corpus,
                                                synthetic_ontology):
        federated = _federated(cda_corpus, synthetic_ontology,
                               "relationships", shards=3)
        with pytest.raises(ValueError):
            federated.build_index(vocabulary={"asthma"},
                                  stores=[MemoryStore()])
        with pytest.raises(ValueError):
            federated.load_index([MemoryStore(), MemoryStore()])

    def test_corrupt_shard_degrades_alone(self, cda_corpus,
                                          synthetic_ontology):
        """One shard's corrupt posting list is rebuilt from that
        shard's corpus; the global ranking is unchanged."""
        shards = 3
        builder_side = _federated(cda_corpus, synthetic_ontology,
                                  "xrank", shards=shards)
        stores = [MemoryStore() for _ in range(shards)]
        vocabulary = {"asthma", "amiodarone"}
        builder_side.build_index(vocabulary=vocabulary, stores=stores)
        wrapped = [FaultInjectingStore(store,
                                       corrupt_keywords=("asthma",))
                   if shard == 1 else store
                   for shard, store in enumerate(stores)]
        loader_side = _federated(cda_corpus, synthetic_ontology,
                                 "xrank", shards=shards)
        loader_side.load_index(wrapped, fallback=True)
        assert loader_side.stats.value(FALLBACK_REBUILDS) == 1
        single = _single(cda_corpus, synthetic_ontology, "xrank")
        assert ranking(loader_side.search("asthma", k=10)) == \
            ranking(single.search("asthma", k=10))


class TestMergeRanked:
    @staticmethod
    def result(dewey: str, score: float) -> QueryResult:
        return QueryResult(dewey=DeweyID.parse(dewey), score=score,
                           keyword_scores=(score,))

    def test_ties_break_by_dewey(self):
        left = [self.result("0.1", 2.0), self.result("0.3", 1.0)]
        right = [self.result("1.2", 2.0), self.result("1.0", 0.5)]
        merged = merge_ranked([left, right])
        assert [r.dewey.encode() for r in merged] == \
            ["0.1", "1.2", "0.3", "1.0"]

    def test_matches_rank_results(self):
        """Merging ranked halves equals ranking the whole."""
        everything = [self.result(f"{doc}.{pos}", score)
                      for doc in range(4)
                      for pos, score in enumerate((3.0, 1.5, 1.5))]
        whole = rank_results(list(everything))
        halves = [rank_results([r for r in everything
                                if r.doc_id % 2 == parity])
                  for parity in (0, 1)]
        assert merge_ranked(halves) == whole
        assert merge_ranked(halves, k=5) == whole[:5]

    def test_truncates_to_k(self):
        ranked = [self.result(f"0.{i}", 10.0 - i) for i in range(6)]
        assert len(merge_ranked([ranked], k=2)) == 2
        assert merge_ranked([ranked], k=100) == ranked

    def test_rejects_non_positive_k(self):
        with pytest.raises(ValueError):
            merge_ranked([[self.result("0.0", 1.0)]], k=0)

    def test_empty_inputs(self):
        assert merge_ranked([]) == []
        assert merge_ranked([[], []]) == []
        only = [self.result("0.0", 1.0)]
        assert merge_ranked([[], only, []]) == only


class TestValidation:
    def test_ontology_required_for_ontology_strategies(self,
                                                       cda_corpus):
        with pytest.raises(ValueError):
            FederatedEngine(cda_corpus, None, strategy="relationships",
                            shards=2)

    def test_rejects_bad_shard_workers(self, cda_corpus,
                                       synthetic_ontology):
        with pytest.raises(ValueError):
            FederatedEngine(cda_corpus, synthetic_ontology, shards=2,
                            shard_workers=0)

    def test_shard_store_path_is_stable(self):
        assert shard_store_path("idx.db", 0, 4) == \
            "idx.db.shard00-of-04"
        assert shard_store_path("idx.db", 3, 4) == \
            "idx.db.shard03-of-04"
