"""Hypothesis strategies shared by the property tests."""

from __future__ import annotations

from hypothesis import strategies as st

from repro.ontology.model import Ontology
from repro.xmldoc.dewey import DeweyID
from repro.xmldoc.model import OntologicalReference, XMLDocument, XMLNode

# ----------------------------------------------------------------------
# Dewey IDs
# ----------------------------------------------------------------------
dewey_ids = st.builds(
    DeweyID,
    st.integers(min_value=0, max_value=50),
    st.lists(st.integers(min_value=0, max_value=9), max_size=6))

# ----------------------------------------------------------------------
# Words / identifiers
# ----------------------------------------------------------------------
words = st.sampled_from((
    "asthma", "cardiac", "arrest", "bronchial", "effusion", "fever",
    "amiodarone", "theophylline", "pain", "valve", "aorta", "pulse",
    "temperature", "arrhythmia", "stenosis", "chronic", "acute",
))

tags = st.sampled_from(("section", "entry", "observation", "value",
                        "paragraph", "title", "component", "text"))


# ----------------------------------------------------------------------
# XML trees
# ----------------------------------------------------------------------
@st.composite
def xml_trees(draw, max_depth: int = 4, concept_codes=()):
    """A random labeled tree, optionally sprinkling code nodes."""
    def build(depth: int) -> XMLNode:
        tag = draw(tags)
        attributes = {}
        if draw(st.booleans()):
            attributes["displayName"] = draw(words)
        reference = None
        if concept_codes and draw(st.integers(0, 4)) == 0:
            code = draw(st.sampled_from(tuple(concept_codes)))
            reference = OntologicalReference(
                "2.16.840.1.113883.6.96", code)
            # Keep the tree serializable: the CDA convention stores the
            # reference in the code/codeSystem attribute pair.
            attributes["code"] = code
            attributes["codeSystem"] = reference.system_code
        text = " ".join(draw(st.lists(words, max_size=4)))
        node = XMLNode(tag, attributes, text=text, reference=reference)
        if depth < max_depth:
            for _ in range(draw(st.integers(0, 3))):
                node.append(build(depth + 1))
        return node

    return build(0)


@st.composite
def xml_documents(draw, doc_id: int = 0, concept_codes=()):
    root = draw(xml_trees(concept_codes=concept_codes))
    return XMLDocument(doc_id=doc_id, root=root)


# ----------------------------------------------------------------------
# Ontologies
# ----------------------------------------------------------------------
@st.composite
def small_ontologies(draw):
    """A random valid ontology: is-a DAG plus typed attribute edges."""
    size = draw(st.integers(min_value=2, max_value=14))
    ontology = Ontology("sys")
    pool = ["asthma", "bronchus", "heart", "valve", "pain", "fever",
            "aorta", "lung", "drug", "agent", "defect", "site",
            "finding", "structure"]
    for index in range(size):
        term = f"{pool[index % len(pool)]} {index}"
        ontology.new_concept(str(index), term,
                             synonyms=(pool[(index + 3) % len(pool)],))
    # is-a edges only from higher to lower indexes: guaranteed DAG.
    for child in range(1, size):
        parent_count = draw(st.integers(0, min(2, child)))
        parents = draw(st.lists(st.integers(0, child - 1),
                                min_size=parent_count,
                                max_size=parent_count, unique=True))
        for parent in parents:
            ontology.add_is_a(str(child), str(parent))
    # attribute edges between arbitrary distinct concepts.
    edge_count = draw(st.integers(0, size))
    types = ("finding-site-of", "associated-with", "due-to", "part-of")
    for _ in range(edge_count):
        source = draw(st.integers(0, size - 1))
        destination = draw(st.integers(0, size - 1))
        type = draw(st.sampled_from(types))
        if source != destination and not ontology.has_relationship(
                str(source), type, str(destination)):
            ontology.add_relationship(str(source), type, str(destination))
    return ontology


#: Random authority-flow graphs: node -> list of (neighbor, factor).
@st.composite
def flow_graphs(draw):
    size = draw(st.integers(min_value=1, max_value=10))
    edges = {}
    for node in range(size):
        neighbor_count = draw(st.integers(0, 3))
        entries = []
        for _ in range(neighbor_count):
            neighbor = draw(st.integers(0, size - 1))
            factor = draw(st.floats(min_value=0.05, max_value=1.0,
                                    allow_nan=False))
            entries.append((neighbor, factor))
        edges[node] = entries
    seed_count = draw(st.integers(1, size))
    seeds = {}
    for _ in range(seed_count):
        node = draw(st.integers(0, size - 1))
        seeds[node] = draw(st.floats(min_value=0.05, max_value=1.0,
                                     allow_nan=False))
    return edges, seeds
