"""Hypothesis strategies shared by the property tests."""

from __future__ import annotations

from hypothesis import strategies as st

from repro.ontology.model import Ontology
from repro.xmldoc.dewey import DeweyID
from repro.xmldoc.model import OntologicalReference, XMLDocument, XMLNode

# ----------------------------------------------------------------------
# Dewey IDs
# ----------------------------------------------------------------------
dewey_ids = st.builds(
    DeweyID,
    st.integers(min_value=0, max_value=50),
    st.lists(st.integers(min_value=0, max_value=9), max_size=6))

# ----------------------------------------------------------------------
# Words / identifiers
# ----------------------------------------------------------------------
words = st.sampled_from((
    "asthma", "cardiac", "arrest", "bronchial", "effusion", "fever",
    "amiodarone", "theophylline", "pain", "valve", "aorta", "pulse",
    "temperature", "arrhythmia", "stenosis", "chronic", "acute",
))

tags = st.sampled_from(("section", "entry", "observation", "value",
                        "paragraph", "title", "component", "text"))


# ----------------------------------------------------------------------
# XML trees
# ----------------------------------------------------------------------
@st.composite
def xml_trees(draw, max_depth: int = 4, concept_codes=()):
    """A random labeled tree, optionally sprinkling code nodes."""
    def build(depth: int) -> XMLNode:
        tag = draw(tags)
        attributes = {}
        if draw(st.booleans()):
            attributes["displayName"] = draw(words)
        reference = None
        if concept_codes and draw(st.integers(0, 4)) == 0:
            code = draw(st.sampled_from(tuple(concept_codes)))
            reference = OntologicalReference(
                "2.16.840.1.113883.6.96", code)
            # Keep the tree serializable: the CDA convention stores the
            # reference in the code/codeSystem attribute pair.
            attributes["code"] = code
            attributes["codeSystem"] = reference.system_code
        text = " ".join(draw(st.lists(words, max_size=4)))
        node = XMLNode(tag, attributes, text=text, reference=reference)
        if depth < max_depth:
            for _ in range(draw(st.integers(0, 3))):
                node.append(build(depth + 1))
        return node

    return build(0)


@st.composite
def xml_documents(draw, doc_id: int = 0, concept_codes=()):
    root = draw(xml_trees(concept_codes=concept_codes))
    return XMLDocument(doc_id=doc_id, root=root)


# ----------------------------------------------------------------------
# Ontologies
# ----------------------------------------------------------------------
@st.composite
def small_ontologies(draw):
    """A random valid ontology: is-a DAG plus typed attribute edges."""
    size = draw(st.integers(min_value=2, max_value=14))
    ontology = Ontology("sys")
    pool = ["asthma", "bronchus", "heart", "valve", "pain", "fever",
            "aorta", "lung", "drug", "agent", "defect", "site",
            "finding", "structure"]
    for index in range(size):
        term = f"{pool[index % len(pool)]} {index}"
        ontology.new_concept(str(index), term,
                             synonyms=(pool[(index + 3) % len(pool)],))
    # is-a edges only from higher to lower indexes: guaranteed DAG.
    for child in range(1, size):
        parent_count = draw(st.integers(0, min(2, child)))
        parents = draw(st.lists(st.integers(0, child - 1),
                                min_size=parent_count,
                                max_size=parent_count, unique=True))
        for parent in parents:
            ontology.add_is_a(str(child), str(parent))
    # attribute edges between arbitrary distinct concepts.
    edge_count = draw(st.integers(0, size))
    types = ("finding-site-of", "associated-with", "due-to", "part-of")
    for _ in range(edge_count):
        source = draw(st.integers(0, size - 1))
        destination = draw(st.integers(0, size - 1))
        type = draw(st.sampled_from(types))
        if source != destination and not ontology.has_relationship(
                str(source), type, str(destination)):
            ontology.add_relationship(str(source), type, str(destination))
    return ontology


# ----------------------------------------------------------------------
# Incremental-maintenance schedules
# ----------------------------------------------------------------------
@st.composite
def corpus_mutation_plans(draw, max_documents: int = 6,
                          max_ops: int = 6, concept_codes=()):
    """A random incremental-index maintenance schedule.

    Returns ``(documents, initial_ids, ops)``: the document universe,
    the ids of the base build, and a list of ``("add", ids)`` /
    ``("remove", ids)`` / ``("compact", ())`` steps. The invariants the
    segment lifecycle enforces hold by construction: adds introduce
    only absent ids (including re-adds of previously tombstoned
    documents, with identical content), removes target only live ids
    and never empty the index, and every returned document is live at
    some point in the schedule (so a statistics universe over
    ``documents`` covers exactly the ever-indexed set).
    """
    count = draw(st.integers(min_value=2, max_value=max_documents))
    documents = [draw(xml_documents(doc_id=doc_id,
                                    concept_codes=concept_codes))
                 for doc_id in range(count)]
    initial_count = draw(st.integers(min_value=1, max_value=count))
    initial_ids = tuple(range(initial_count))
    live = set(initial_ids)
    absent = set(range(initial_count, count))
    ever = set(initial_ids)
    ops: list[tuple[str, tuple[int, ...]]] = []
    for _ in range(draw(st.integers(min_value=1, max_value=max_ops))):
        kinds = ["compact"]
        if absent:
            kinds.append("add")
        if len(live) > 1:
            kinds.append("remove")
        kind = draw(st.sampled_from(kinds))
        if kind == "add":
            pool = sorted(absent)
            size = draw(st.integers(1, min(2, len(pool))))
            ids = tuple(sorted(draw(st.lists(
                st.sampled_from(pool), min_size=size, max_size=size,
                unique=True))))
            absent -= set(ids)
            live |= set(ids)
            ever |= set(ids)
            ops.append(("add", ids))
        elif kind == "remove":
            pool = sorted(live)
            size = draw(st.integers(1, min(2, len(pool) - 1)))
            ids = tuple(sorted(draw(st.lists(
                st.sampled_from(pool), min_size=size, max_size=size,
                unique=True))))
            live -= set(ids)
            absent |= set(ids)
            ops.append(("remove", ids))
        else:
            ops.append(("compact", ()))
    # Drop documents the schedule never indexed: the universe is the
    # ever-live set, which is what pins the statistics epoch.
    documents = [document for document in documents
                 if document.doc_id in ever]
    return documents, initial_ids, ops


#: Random authority-flow graphs: node -> list of (neighbor, factor).
@st.composite
def flow_graphs(draw):
    size = draw(st.integers(min_value=1, max_value=10))
    edges = {}
    for node in range(size):
        neighbor_count = draw(st.integers(0, 3))
        entries = []
        for _ in range(neighbor_count):
            neighbor = draw(st.integers(0, size - 1))
            factor = draw(st.floats(min_value=0.05, max_value=1.0,
                                    allow_nan=False))
            entries.append((neighbor, factor))
        edges[node] = entries
    seed_count = draw(st.integers(1, size))
    seeds = {}
    for _ in range(seed_count):
        node = draw(st.integers(0, size - 1))
        seeds[node] = draw(st.floats(min_value=0.05, max_value=1.0,
                                     allow_nan=False))
    return edges, seeds
