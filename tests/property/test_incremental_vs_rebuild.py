"""Differential tests: incremental LSM-segment maintenance ≡ rebuild.

The contract of the segment lifecycle is that appends, tombstones and
compaction are an *organization* of the index, never an approximation
of it: after any interleaving of add / remove / compact steps, the
logical index (the :func:`~repro.storage.interface.canonical_dump` of
the store, which reads through the merged segment view) is
**byte-identical** to a from-scratch build of the same live set with
the same statistics substrate and keyword universe.

The statistics substrate is the subtle part. BM25 statistics are
corpus-global, so a from-scratch build over a different corpus epoch
would legitimately differ. Every engine here is therefore *pinned*:
one :class:`~repro.core.scoring.ElementIndex` over the ever-indexed
document universe, shared by the incremental engine and the rebuild
reference through :class:`~repro.core.query.federated.ShardScopedBuilder`
scoped to the live ids. The reference keyword universe is the
experimental vocabulary rule applied to the same document universe —
exactly the union of the base build's vocabulary with each append's.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, seed, settings, \
    strategies as st

from repro.core.config import RELATIONSHIPS, XRANK, XOntoRankConfig
from repro.core.index.vocabulary import (corpus_vocabulary,
                                         experiment_vocabulary)
from repro.core.query.engine import XOntoRankEngine
from repro.core.query.federated import FederatedEngine, \
    ShardScopedBuilder
from repro.core.scoring import ElementIndex
from repro.core.stats import (APPEND_DOCS, APPEND_KEYWORDS_BUILT,
                              APPEND_KEYWORDS_SKIPPED, SEGMENTS_LIVE)
from repro.ir.tokenizer import KeywordQuery
from repro.ontology.api import TerminologyService
from repro.ontology.snomed import (ASTHMA, BRONCHITIS, CARDIAC_ARREST,
                                   THEOPHYLLINE, build_core_ontology)
from repro.storage import MemoryStore, SQLiteStore, canonical_dump, \
    load_catalog, verify_manifest
from repro.storage.manifest import CHECKSUM_KEY_PREFIX
from repro.xmldoc.model import Corpus, XMLDocument, XMLNode

from .strategies import corpus_mutation_plans, words

CODES = (ASTHMA, BRONCHITIS, CARDIAC_ARREST, THEOPHYLLINE)
K_VALUES = (1, 3, 10, None)
STORE_KINDS = ("memory", "sqlite")

_ONTOLOGY = build_core_ontology()
_TERMINOLOGY = TerminologyService([_ONTOLOGY])


def make_store(kind: str):
    return MemoryStore() if kind == "memory" else SQLiteStore()


def universe_substrate(documents, config, ontology):
    """The pinned statistics epoch: one element index over every
    document the schedule will ever make live."""
    universe = Corpus(list(documents))
    resolver = _TERMINOLOGY.resolve if ontology is not None else None
    index = ElementIndex(universe, text_policy=config.text_policy,
                         concept_resolver=resolver, k1=config.bm25_k1,
                         b=config.bm25_b,
                         ir_function=config.ir_function)
    return universe, index


def pinned_engine(documents, doc_ids, ontology, strategy, config,
                  universe_index):
    """An engine over the ``doc_ids`` subset whose builder is scoped
    to those ids but whose statistics come from the shared universe."""
    live = [document for document in documents
            if document.doc_id in doc_ids]
    engine = XOntoRankEngine(Corpus(live), ontology, strategy=strategy,
                             config=config,
                             element_index=universe_index)
    engine.index_manager.builder = ShardScopedBuilder(
        engine.builder, frozenset(doc_ids))
    return engine


def reference_vocabulary(universe, ontology, strategy, config):
    """The keyword universe of the rebuild reference: the experimental
    vocabulary rule over the ever-indexed corpus (the rule both the
    base build and each append apply to their own documents; both
    distribute over document union)."""
    if strategy == XRANK or ontology is None:
        return corpus_vocabulary(universe, config.text_policy)
    return experiment_vocabulary(universe, ontology, radius=2,
                                 text_policy=config.text_policy)


def replay(engine, store, documents, initial_ids, ops):
    """Drive the schedule through the engine facade; returns the final
    live id set."""
    by_id = {document.doc_id: document for document in documents}
    live = set(initial_ids)
    for kind, ids in ops:
        if kind == "add":
            engine.add_documents([by_id[doc_id] for doc_id in ids],
                                 store)
            live |= set(ids)
        elif kind == "remove":
            engine.remove_documents(list(ids), store)
            live -= set(ids)
        else:
            engine.compact(store)
    return live


def exact_ranking(results):
    return [(result.dewey, result.score, result.keyword_scores)
            for result in results]


# ----------------------------------------------------------------------
# The headline property: canonical dumps are byte-identical
# ----------------------------------------------------------------------
class TestIncrementalEqualsRebuild:
    @pytest.mark.parametrize("store_kind", STORE_KINDS)
    @seed(20090331)
    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(plan=corpus_mutation_plans(concept_codes=CODES),
           strategy=st.sampled_from((XRANK, RELATIONSHIPS)))
    def test_segmented_store_dumps_byte_identical(self, store_kind,
                                                  plan, strategy):
        documents, initial_ids, ops = plan
        ontology = _ONTOLOGY if strategy != XRANK else None
        config = XOntoRankConfig()
        universe, universe_index = universe_substrate(
            documents, config, ontology)

        engine = pinned_engine(documents, set(initial_ids), ontology,
                               strategy, config, universe_index)
        store = make_store(store_kind)
        engine.build_index(store=store)
        live = replay(engine, store, documents, initial_ids, ops)

        report = verify_manifest(store)
        assert report.ok, report.describe()

        reference = pinned_engine(documents, live, ontology, strategy,
                                  config, universe_index)
        reference_store = make_store(store_kind)
        reference.build_index(
            vocabulary=reference_vocabulary(universe, ontology,
                                            strategy, config),
            store=reference_store)
        assert canonical_dump(store, [strategy]) == \
            canonical_dump(reference_store, [strategy])

    @seed(20090331)
    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(plan=corpus_mutation_plans(concept_codes=CODES),
           terms=st.lists(words, min_size=1, max_size=2, unique=True),
           k=st.sampled_from(K_VALUES))
    def test_grown_engine_searches_like_rebuilt_engine(self, plan,
                                                       terms, k):
        documents, initial_ids, ops = plan
        config = XOntoRankConfig()
        universe, universe_index = universe_substrate(
            documents, config, _ONTOLOGY)

        engine = pinned_engine(documents, set(initial_ids), _ONTOLOGY,
                               RELATIONSHIPS, config, universe_index)
        store = MemoryStore()
        engine.build_index(store=store)
        live = replay(engine, store, documents, initial_ids, ops)

        reference = pinned_engine(documents, live, _ONTOLOGY,
                                  RELATIONSHIPS, config,
                                  universe_index)
        query = KeywordQuery.of(*terms)
        assert exact_ranking(engine.search(query, k=k)) == \
            exact_ranking(reference.search(query, k=k))


# ----------------------------------------------------------------------
# Federated: per-shard stores grown in place ≡ per-shard rebuilds
# ----------------------------------------------------------------------
class TestFederatedIncremental:
    @seed(20090331)
    @settings(max_examples=5, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(plan=corpus_mutation_plans(max_documents=5,
                                      concept_codes=CODES),
           terms=st.lists(words, min_size=1, max_size=2, unique=True),
           shards=st.integers(min_value=2, max_value=3))
    def test_federated_shard_stores_byte_identical(self, plan, terms,
                                                   shards):
        documents, initial_ids, ops = plan
        config = XOntoRankConfig()
        universe, universe_index = universe_substrate(
            documents, config, _ONTOLOGY)
        by_id = {document.doc_id: document for document in documents}
        vocabulary = reference_vocabulary(universe, _ONTOLOGY,
                                          RELATIONSHIPS, config)

        initial = [by_id[doc_id] for doc_id in initial_ids]
        federated = FederatedEngine(Corpus(initial), _ONTOLOGY,
                                    strategy=RELATIONSHIPS,
                                    config=config, shards=shards,
                                    element_index=universe_index)
        stores = [MemoryStore() for _ in range(shards)]
        federated.build_index(vocabulary=vocabulary, stores=stores)
        live = set(initial_ids)
        for kind, ids in ops:
            if kind == "add":
                federated.add_documents(
                    [by_id[doc_id] for doc_id in ids], stores)
                live |= set(ids)
            elif kind == "remove":
                federated.remove_documents(list(ids), stores)
                live -= set(ids)
            else:
                federated.compact(stores)

        # The hash policy makes the from-scratch assignment of the
        # final corpus equal the incrementally grown one, so shard
        # stores must match pairwise, byte for byte.
        reference = FederatedEngine(
            Corpus([by_id[doc_id] for doc_id in sorted(live)]),
            _ONTOLOGY, strategy=RELATIONSHIPS, config=config,
            shards=shards, element_index=universe_index)
        reference_stores = [MemoryStore() for _ in range(shards)]
        reference.build_index(vocabulary=vocabulary,
                              stores=reference_stores)
        for grown, rebuilt in zip(stores, reference_stores):
            assert canonical_dump(grown, [RELATIONSHIPS]) == \
                canonical_dump(rebuilt, [RELATIONSHIPS])

        query = KeywordQuery.of(*terms)
        assert exact_ranking(federated.search(query, k=3)) == \
            exact_ranking(reference.search(query, k=3))


# ----------------------------------------------------------------------
# Lifecycle rejections: duplicate ids and mutated re-adds
# ----------------------------------------------------------------------
def _tiny_document(doc_id: int, text: str) -> XMLDocument:
    root = XMLNode("record", {}, text=text)
    return XMLDocument(doc_id=doc_id, root=root)


class TestAppendValidation:
    def setup_method(self):
        self.documents = [
            _tiny_document(0, "asthma fever"),
            _tiny_document(1, "cardiac arrest"),
            _tiny_document(2, "chronic pain"),
        ]
        self.extra = _tiny_document(3, "valve stenosis")

    def _engine_and_store(self):
        engine = XOntoRankEngine(Corpus(self.documents), None,
                                 strategy=XRANK,
                                 config=XOntoRankConfig())
        store = MemoryStore()
        engine.build_index(store=store)
        return engine, store

    def test_duplicate_ids_in_batch_rejected(self):
        engine, store = self._engine_and_store()
        with pytest.raises(ValueError):
            engine.add_documents([self.extra, self.extra], store)

    def test_already_live_id_rejected(self):
        engine, store = self._engine_and_store()
        with pytest.raises(ValueError):
            engine.add_documents([self.documents[0]], store)

    def test_readd_with_changed_content_rejected(self):
        engine, store = self._engine_and_store()
        engine.remove_documents([0], store)
        mutated = _tiny_document(0, "completely different words")
        with pytest.raises(ValueError):
            engine.add_documents([mutated], store)

    def test_identical_readd_accepted(self):
        engine, store = self._engine_and_store()
        engine.remove_documents([0], store)
        engine.add_documents([self.documents[0]], store)
        catalog = load_catalog(store)
        assert 0 in catalog.live_set
        assert catalog.tombstone_count == 0

    def test_empty_batch_rejected(self):
        engine, store = self._engine_and_store()
        with pytest.raises(ValueError):
            engine.add_documents([], store)

    def test_remove_of_absent_id_rejected(self):
        engine, store = self._engine_and_store()
        with pytest.raises(KeyError):
            engine.remove_documents([99], store)


# ----------------------------------------------------------------------
# Acceptance: appending one document rebuilds no existing segment
# ----------------------------------------------------------------------
WORD_POOL = ("asthma", "cardiac", "arrest", "fever", "pain", "valve",
             "aorta", "pulse", "chronic", "acute")


def test_append_to_100_doc_corpus_rebuilds_nothing():
    """The point of the LSM organization: one new document costs work
    proportional to the *new* content, not the corpus. The base
    segment's record (content checksum included) survives the append
    untouched, and the build counters show the skip filter proving
    almost the whole keyword universe unreachable from the new text."""
    documents = [
        _tiny_document(doc_id, f"{WORD_POOL[doc_id % 10]} "
                               f"{WORD_POOL[(doc_id * 3) % 10]}")
        for doc_id in range(100)
    ]
    # The new document shares no tokens with the pool, so every
    # existing keyword is provably untouched.
    extra = _tiny_document(100, "zygoma zygote")
    universe = documents + [extra]
    config = XOntoRankConfig()
    _, universe_index = universe_substrate(universe, config, None)

    engine = pinned_engine(universe, set(range(100)), None, XRANK,
                           config, universe_index)
    store = MemoryStore()
    engine.build_index(store=store)
    # The base build writes the plain namespace (the catalog is
    # bootstrapped lazily on the first mutation): snapshot its content.
    base_checksum = store.get_metadata(CHECKSUM_KEY_PREFIX + XRANK)
    base_postings = {keyword: store.get_postings(XRANK, keyword)
                     for keyword in store.keywords(XRANK)}

    engine.add_documents([extra], store)

    catalog = load_catalog(store)
    assert len(catalog.segments) == 2
    # Segment 0 adopted the base build as-is — same content checksum —
    # and its rows in the plain namespace are byte-for-byte untouched.
    assert catalog.segments[0].checksum == base_checksum
    assert {keyword: store.get_postings(XRANK, keyword)
            for keyword in base_postings} == base_postings
    assert catalog.segments[-1].doc_ids == (100,)

    stats = engine.stats
    assert stats.value(APPEND_DOCS) == 1
    # Built: the two genuinely new words plus "record" (the element
    # tag every document shares, so the new text does touch it — but
    # only its new-document postings are built). All ten pool words
    # were proven untouched and skipped.
    assert stats.value(APPEND_KEYWORDS_BUILT) == 3
    assert stats.value(APPEND_KEYWORDS_SKIPPED) == 10
    assert stats.value(SEGMENTS_LIVE) == 2
