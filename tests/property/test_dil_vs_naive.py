"""Property test: the DIL stack-merge algorithm computes exactly the
Eq. 1-5 semantics, validated against the naive tree-walking evaluator on
random corpora and queries.

This is the central correctness statement about the index machinery: any
divergence in result set, ranking or scores is a bug in either the
posting lists or the merge.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import RELATIONSHIPS, XOntoRankConfig
from repro.core.query.engine import XOntoRankEngine
from repro.ir.tokenizer import KeywordQuery
from repro.ontology.snomed import (ASTHMA, BRONCHITIS, CARDIAC_ARREST,
                                   THEOPHYLLINE, build_core_ontology)
from repro.xmldoc.model import Corpus

from .strategies import words, xml_documents

CODES = (ASTHMA, BRONCHITIS, CARDIAC_ARREST, THEOPHYLLINE)

_ONTOLOGY = build_core_ontology()


@st.composite
def corpora(draw):
    count = draw(st.integers(min_value=1, max_value=3))
    documents = [draw(xml_documents(doc_id=doc_id, concept_codes=CODES))
                 for doc_id in range(count)]
    return Corpus(documents)


@st.composite
def queries(draw):
    terms = draw(st.lists(words, min_size=1, max_size=3, unique=True))
    return KeywordQuery.of(*terms)


@settings(max_examples=40, deadline=None)
@given(corpora(), queries(), st.sampled_from(["xrank", RELATIONSHIPS]))
def test_dil_matches_naive(corpus, query, strategy):
    ontology = _ONTOLOGY if strategy != "xrank" else None
    engine = XOntoRankEngine(corpus, ontology, strategy=strategy,
                             config=XOntoRankConfig())
    dil_results = engine.search(query, k=50)
    naive_results = engine.search_naive(query, k=50)
    assert [r.dewey for r in dil_results] == \
        [r.dewey for r in naive_results]
    for dil_result, naive_result in zip(dil_results, naive_results):
        assert dil_result.score == pytest.approx(naive_result.score)
        assert dil_result.keyword_scores == \
            pytest.approx(naive_result.keyword_scores)
