"""Property tests: invariants of the related-work baselines."""

from hypothesis import given, settings, strategies as st

from repro.baselines.slca import SLCAEvaluator
from repro.baselines.xsearch import XSEarchEvaluator
from repro.ir.tokenizer import KeywordQuery
from repro.xmldoc.dewey import assign_dewey_ids, node_at
from repro.xmldoc.model import Corpus

from .strategies import words, xml_documents


@st.composite
def corpus_and_terms(draw):
    corpus = Corpus([draw(xml_documents(doc_id=0))])
    terms = draw(st.lists(words, min_size=1, max_size=2, unique=True))
    return corpus, KeywordQuery.of(*terms)


@settings(max_examples=40, deadline=None)
@given(corpus_and_terms())
def test_slca_results_are_antichain(data):
    corpus, query = data
    results = SLCAEvaluator(corpus).search(query)
    deweys = [result.dewey for result in results]
    for index, first in enumerate(deweys):
        for second in deweys[index + 1:]:
            assert not first.is_ancestor_of(second)
            assert not second.is_ancestor_of(first)


@settings(max_examples=40, deadline=None)
@given(corpus_and_terms())
def test_slca_results_cover_all_keywords(data):
    corpus, query = data
    from repro.ir.tokenizer import tokenize
    for result in SLCAEvaluator(corpus).search(query):
        document = corpus.get(result.dewey.doc_id)
        subtree_tokens = set(tokenize(
            node_at(document, result.dewey).subtree_text()))
        for keyword in query:
            assert set(keyword.tokens) <= subtree_tokens


@settings(max_examples=40, deadline=None)
@given(corpus_and_terms())
def test_xsearch_interconnection_is_symmetric(data):
    corpus, _ = data
    document = corpus.get(0)
    evaluator = XSEarchEvaluator(corpus)
    ids = list(assign_dewey_ids(document).values())
    sample = ids[:6]
    for first in sample:
        for second in sample:
            assert evaluator.interconnected(document, first, second) == \
                evaluator.interconnected(document, second, first)


@settings(max_examples=40, deadline=None)
@given(corpus_and_terms())
def test_xsearch_tuples_within_slca_documents(data):
    """XSEarch answers only exist where exact matches exist, i.e. in
    documents SLCA also finds answers in (the converse fails: the
    interconnection test prunes)."""
    corpus, query = data
    slca_docs = {result.dewey.doc_id
                 for result in SLCAEvaluator(corpus).search(query)}
    xsearch_docs = {result.connector.doc_id
                    for result in XSEarchEvaluator(corpus).search(query)}
    assert xsearch_docs <= slca_docs
