"""Property tests: invariants of the authority-flow expansions."""

from hypothesis import given, settings

from repro.core.ontoscore.base import (best_first_expansion,
                                       level_order_expansion)

from .strategies import flow_graphs

THRESHOLD = 0.1


def neighbors_of(edges):
    def neighbors(node):
        return edges.get(node, [])
    return neighbors


@settings(max_examples=120, deadline=None)
@given(flow_graphs())
def test_scores_bounded_by_best_seed(graph):
    edges, seeds = graph
    scores = best_first_expansion(seeds, neighbors_of(edges), THRESHOLD)
    best_seed = max(seeds.values())
    assert all(score <= best_seed + 1e-12 for score in scores.values())


@settings(max_examples=120, deadline=None)
@given(flow_graphs())
def test_all_results_exceed_threshold(graph):
    edges, seeds = graph
    scores = best_first_expansion(seeds, neighbors_of(edges), THRESHOLD)
    assert all(score > THRESHOLD for score in scores.values())


@settings(max_examples=120, deadline=None)
@given(flow_graphs())
def test_seeds_never_lose_score(graph):
    edges, seeds = graph
    scores = best_first_expansion(seeds, neighbors_of(edges), THRESHOLD)
    for node, seed_score in seeds.items():
        if seed_score > THRESHOLD:
            assert scores[node] >= seed_score - 1e-12


@settings(max_examples=120, deadline=None)
@given(flow_graphs())
def test_best_first_dominates_level_order(graph):
    """The exact fixpoint is an upper bound of the paper's literal BFS."""
    edges, seeds = graph
    exact = best_first_expansion(seeds, neighbors_of(edges), THRESHOLD)
    literal = level_order_expansion(seeds, neighbors_of(edges), THRESHOLD)
    for node, score in literal.items():
        assert exact.get(node, 0.0) >= score - 1e-9
    # And the literal run never reaches nodes the exact run misses.
    assert set(literal) <= set(exact)


@settings(max_examples=120, deadline=None)
@given(flow_graphs())
def test_local_fixpoint_property(graph):
    """Every finalized score satisfies the max-product equations:
    score(n) = max(seed(n), max over incoming (score(m) * factor))
    restricted to nodes above threshold."""
    edges, seeds = graph
    scores = best_first_expansion(seeds, neighbors_of(edges), THRESHOLD)
    for node, score in scores.items():
        incoming = [scores[source] * factor
                    for source, entries in edges.items()
                    if source in scores and scores[source] > THRESHOLD
                    for target, factor in entries if target == node]
        expected = max([seeds.get(node, 0.0)] + incoming)
        assert abs(score - expected) < 1e-9


@settings(max_examples=80, deadline=None)
@given(flow_graphs())
def test_threshold_monotonicity(graph):
    """Raising the threshold can only shrink the result."""
    edges, seeds = graph
    loose = best_first_expansion(seeds, neighbors_of(edges), 0.05)
    tight = best_first_expansion(seeds, neighbors_of(edges), 0.3)
    assert set(tight) <= set(loose)
    for node, score in tight.items():
        assert abs(loose[node] - score) < 1e-9
