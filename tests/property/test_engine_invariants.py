"""Property tests: engine-level invariants on random corpora.

* Monotonicity: ontology-aware NodeScores dominate XRANK's, so every
  subtree XRANK covers is covered (possibly more specifically) by the
  ontology-aware strategies.
* Propagation: the bottom-up propagation helper agrees with a direct
  per-pair recomputation.
* Eq. 1: no result is an ancestor of another result.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import RELATIONSHIPS
from repro.core.query.engine import XOntoRankEngine
from repro.core.scoring import propagate_scores
from repro.ir.tokenizer import KeywordQuery
from repro.ontology.snomed import (ASTHMA, CARDIAC_ARREST,
                                   build_core_ontology)
from repro.xmldoc.dewey import DeweyID
from repro.xmldoc.model import Corpus

from .strategies import dewey_ids, words, xml_documents

_ONTOLOGY = build_core_ontology()
CODES = (ASTHMA, CARDIAC_ARREST)


@st.composite
def corpora(draw):
    count = draw(st.integers(min_value=1, max_value=2))
    return Corpus([draw(xml_documents(doc_id=doc_id,
                                      concept_codes=CODES))
                   for doc_id in range(count)])


@settings(max_examples=25, deadline=None)
@given(corpora(), st.lists(words, min_size=1, max_size=2, unique=True))
def test_ontology_strategy_covers_xrank_results(corpus, terms):
    query = KeywordQuery.of(*terms)
    xrank = XOntoRankEngine(corpus, None, strategy="xrank")
    onto = XOntoRankEngine(corpus, _ONTOLOGY, strategy=RELATIONSHIPS)
    xrank_results = xrank.search(query, k=1000)
    onto_results = onto.search(query, k=1000)
    for base in xrank_results:
        assert any(base.dewey.contains(other.dewey)
                   or other.dewey.contains(base.dewey)
                   for other in onto_results)


@settings(max_examples=25, deadline=None)
@given(corpora(), st.lists(words, min_size=1, max_size=2, unique=True))
def test_results_are_antichain(corpus, terms):
    """Eq. 1: results never nest."""
    query = KeywordQuery.of(*terms)
    engine = XOntoRankEngine(corpus, _ONTOLOGY, strategy=RELATIONSHIPS)
    results = engine.search(query, k=1000)
    deweys = [result.dewey for result in results]
    for index, first in enumerate(deweys):
        for second in deweys[index + 1:]:
            assert not first.is_ancestor_of(second)
            assert not second.is_ancestor_of(first)


@settings(max_examples=60, deadline=None)
@given(st.dictionaries(dewey_ids,
                       st.floats(min_value=0.01, max_value=1.0,
                                 allow_nan=False),
                       min_size=1, max_size=12),
       st.floats(min_value=0.1, max_value=1.0, allow_nan=False))
def test_propagation_matches_bruteforce(node_scores, decay):
    propagated = propagate_scores(node_scores, decay)
    # Brute force: for every node that appears as an ancestor-or-self
    # of some scored node, max over descendants.
    candidates = set()
    for dewey in node_scores:
        current = dewey
        while True:
            candidates.add(current)
            if not current.path:
                break
            current = current.parent()
    for candidate in candidates:
        expected = max(
            (score * decay ** candidate.distance_to_descendant(dewey)
             for dewey, score in node_scores.items()
             if candidate.contains(dewey)), default=0.0)
        assert propagated.get(candidate, 0.0) == pytest.approx(expected)
