"""Differential tests: bounded top-k execution ≡ full evaluation + cut.

The contract of :meth:`DILQueryProcessor.collect_topk` is that the
document-skipping bounded mode is an *optimization*, never an
approximation: for every corpus, query and k it returns the
byte-identical prefix of the full Eq. 1 enumeration ranked by
``(-score, dewey)`` — same Dewey IDs, same floats (both modes run the
same stack merge per document, so no arithmetic is reordered). This
holds through every layer: processor, pipeline, single engine, and the
federated engine's per-shard fan-out.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, seed, settings, \
    strategies as st

from repro.core.config import RELATIONSHIPS, XOntoRankConfig
from repro.core.query.engine import XOntoRankEngine
from repro.core.query.federated import FederatedEngine
from repro.core.query.results import rank_results
from repro.ir.tokenizer import KeywordQuery
from repro.ontology.snomed import (ASTHMA, BRONCHITIS, CARDIAC_ARREST,
                                   THEOPHYLLINE, build_core_ontology)
from repro.xmldoc.model import Corpus

from repro.storage import MemoryStore

from .strategies import corpus_mutation_plans, words, xml_documents
from .test_incremental_vs_rebuild import pinned_engine, replay, \
    universe_substrate

CODES = (ASTHMA, BRONCHITIS, CARDIAC_ARREST, THEOPHYLLINE)
K_VALUES = (1, 3, 10, None)

_ONTOLOGY = build_core_ontology()


@st.composite
def corpora(draw, max_documents: int = 3):
    count = draw(st.integers(min_value=1, max_value=max_documents))
    documents = [draw(xml_documents(doc_id=doc_id, concept_codes=CODES))
                 for doc_id in range(count)]
    return Corpus(documents)


@st.composite
def queries(draw):
    terms = draw(st.lists(words, min_size=1, max_size=3, unique=True))
    return KeywordQuery.of(*terms)


def exact_ranking(results):
    """The byte-level identity of a ranking: no float tolerance."""
    return [(result.dewey, result.score, result.keyword_scores)
            for result in results]


def full_ranking(engine, query):
    """Full-evaluate-then-rank, bypassing the bounded default mode."""
    return engine.pipeline.run(query, k=None).results


@settings(max_examples=40, deadline=None)
@given(corpora(), queries(), st.sampled_from(K_VALUES),
       st.sampled_from(["xrank", RELATIONSHIPS]))
def test_topk_equals_full_prefix(corpus, query, k, strategy):
    ontology = _ONTOLOGY if strategy != "xrank" else None
    engine = XOntoRankEngine(corpus, ontology, strategy=strategy,
                             config=XOntoRankConfig())
    full = full_ranking(engine, query)
    bounded = engine.search(query, k=k)
    cut = k if k is not None else engine.config.top_k
    assert exact_ranking(bounded) == exact_ranking(full[:cut])


@settings(max_examples=25, deadline=None)
@given(corpora(max_documents=4), queries(), st.sampled_from(K_VALUES),
       st.integers(min_value=2, max_value=3))
def test_federated_topk_equals_full_prefix(corpus, query, k, shards):
    single = XOntoRankEngine(corpus, _ONTOLOGY,
                             strategy=RELATIONSHIPS,
                             config=XOntoRankConfig())
    federated = FederatedEngine(corpus, _ONTOLOGY,
                                strategy=RELATIONSHIPS,
                                config=XOntoRankConfig(), shards=shards)
    full = full_ranking(single, query)
    bounded = federated.search(query, k=k)
    cut = k if k is not None else federated.config.top_k
    assert exact_ranking(bounded) == exact_ranking(full[:cut])


@settings(max_examples=25, deadline=None)
@given(corpora(), queries(), st.integers(min_value=1, max_value=6))
def test_processor_topk_equals_rank_of_collect(corpus, query, k):
    """The processor-level contract, below the pipeline: collect_topk
    is exactly rank_results(collect(...), k)."""
    engine = XOntoRankEngine(corpus, _ONTOLOGY,
                             strategy=RELATIONSHIPS,
                             config=XOntoRankConfig())
    dils = [engine.dil_for(keyword) for keyword in query]
    processor = engine.processor
    full = rank_results(processor.collect(dils), k)
    assert exact_ranking(processor.collect_topk(dils, k)) == \
        exact_ranking(full)


@seed(20090331)
@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(plan=corpus_mutation_plans(concept_codes=CODES), query=queries(),
       k=st.sampled_from(K_VALUES))
def test_topk_equals_full_prefix_across_segments(plan, query, k):
    """The pruning contract survives the segment merge: an engine
    grown through add/remove/compact steps serves its DILs from the
    multi-segment view, and bounded top-k over those merged lists is
    still the byte-identical prefix of the full enumeration."""
    documents, initial_ids, ops = plan
    config = XOntoRankConfig()
    _, universe_index = universe_substrate(documents, config,
                                           _ONTOLOGY)
    engine = pinned_engine(documents, set(initial_ids), _ONTOLOGY,
                           RELATIONSHIPS, config, universe_index)
    store = MemoryStore()
    engine.build_index(store=store)
    replay(engine, store, documents, initial_ids, ops)

    # The block-max metadata the skipping mode trusts must be exact on
    # merged lists: per document, the recorded bound IS the maximum
    # posting score, so no document can be wrongly skipped across a
    # segment boundary.
    for keyword in query:
        dil = engine.dil_for(keyword)
        expected: dict[int, float] = {}
        for posting in dil.postings():
            doc_id = posting.dewey.doc_id
            if doc_id not in expected \
                    or posting.score > expected[doc_id]:
                expected[doc_id] = posting.score
        assert dil.doc_max_scores() == expected

    full = full_ranking(engine, query)
    bounded = engine.search(query, k=k)
    cut = k if k is not None else engine.config.top_k
    assert exact_ranking(bounded) == exact_ranking(full[:cut])


def test_bounded_reads_fewer_postings(cda_corpus, synthetic_ontology):
    """The point of the mode: on a real corpus with small k, document
    skipping strictly reduces merge-consumed postings."""
    engine = XOntoRankEngine(cda_corpus, synthetic_ontology,
                             strategy=RELATIONSHIPS)
    query = KeywordQuery.parse('"cardiac arrest" amiodarone')
    dils = [engine.dil_for(keyword) for keyword in query]
    engine.processor.collect(dils)
    full_reads = engine.processor.last_statistics.postings_read
    engine.processor.collect_topk(dils, 1)
    bounded = engine.processor.last_statistics
    assert bounded.postings_read < full_reads
    assert bounded.docs_skipped > 0


def test_collect_topk_rejects_bad_k(figure1_corpus, core_ontology):
    engine = XOntoRankEngine(figure1_corpus, core_ontology,
                             strategy=RELATIONSHIPS)
    query = KeywordQuery.parse("asthma")
    dils = [engine.dil_for(keyword) for keyword in query]
    with pytest.raises(ValueError):
        engine.processor.collect_topk(dils, 0)
    with pytest.raises(ValueError):
        engine.processor.collect_topk([], 3)
