"""Property: a compact-block DIL is indistinguishable from an eager one.

``DeweyInvertedList.from_block`` must be a pure representation change:
for arbitrary posting lists, the merge (`collect`) and bounded top-k
(`collect_topk`) results, the pruning sidecar (`doc_max_scores`), and
the storage round-trip (`encoded`) all agree exactly with the eager
``Posting``-object list -- same Dewey IDs, same float bits, same order.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.index.dil import DeweyInvertedList, Posting
from repro.core.query.dil_algorithm import DILQueryProcessor
from repro.ir.tokenizer import Keyword
from repro.storage.codec import PostingBlock, encode_postings
from repro.xmldoc.dewey import DeweyID

_scores = st.floats(min_value=0.001, max_value=10.0, allow_nan=False)
_deweys = st.tuples(
    st.integers(min_value=0, max_value=30),
    st.lists(st.integers(min_value=0, max_value=6),
             min_size=0, max_size=4).map(tuple))
_posting_maps = st.dictionaries(_deweys, _scores, min_size=1,
                                max_size=40)
_queries = st.lists(_posting_maps, min_size=1, max_size=3)


def _eager(name: str, entries) -> DeweyInvertedList:
    postings = [Posting(DeweyID(doc_id, path), score)
                for (doc_id, path), score in sorted(entries.items())]
    return DeweyInvertedList(Keyword.from_text(name), postings)


def _compact(name: str, entries) -> DeweyInvertedList:
    block = PostingBlock(encode_postings(
        _eager(name, entries).encoded()))
    return DeweyInvertedList.from_block(Keyword.from_text(name), block)


def _key(result):
    return (result.dewey.doc_id, result.dewey.path, result.score,
            result.keyword_scores)


@settings(max_examples=50, deadline=None)
@given(_queries)
def test_collect_identical(keyword_maps):
    eager = [_eager(f"w{i}", m) for i, m in enumerate(keyword_maps)]
    compact = [_compact(f"w{i}", m) for i, m in enumerate(keyword_maps)]
    processor = DILQueryProcessor(decay=0.5)
    assert sorted(map(_key, processor.collect(eager))) \
        == sorted(map(_key, processor.collect(compact)))


@settings(max_examples=50, deadline=None)
@given(_queries, st.integers(min_value=1, max_value=8))
def test_collect_topk_identical(keyword_maps, k):
    eager = [_eager(f"w{i}", m) for i, m in enumerate(keyword_maps)]
    compact = [_compact(f"w{i}", m) for i, m in enumerate(keyword_maps)]
    processor = DILQueryProcessor(decay=0.5)
    assert list(map(_key, processor.collect_topk(eager, k))) \
        == list(map(_key, processor.collect_topk(compact, k)))


@settings(max_examples=50, deadline=None)
@given(_posting_maps)
def test_list_api_identical(entries):
    eager = _eager("w", entries)
    compact = _compact("w", entries)
    assert len(compact) == len(eager)
    assert bool(compact) == bool(eager)
    assert compact.encoded() == eager.encoded()
    assert compact.doc_max_scores() == eager.doc_max_scores()
    assert compact.document_ids() == eager.document_ids()
    assert [p.dewey.encode() for p in compact] \
        == [p.dewey.encode() for p in eager]
    assert compact.sorted_postings() == eager.sorted_postings()
