"""Property tests: Kendall tau and BM25 invariants."""

from hypothesis import given, settings, strategies as st

from repro.evaluation.kendall import kendall_tau_topk
from repro.ir.bm25 import BM25Scorer
from repro.ir.inverted_index import PositionalIndex
from repro.ir.tokenizer import Keyword

from .strategies import words

ranked_lists = st.lists(st.sampled_from("abcdefghij"), max_size=6,
                        unique=True)
penalties = st.sampled_from((0.0, 0.25, 0.5, 1.0))


class TestKendall:
    @settings(max_examples=150, deadline=None)
    @given(ranked_lists, ranked_lists, penalties)
    def test_range_and_symmetry(self, left, right, p):
        forward = kendall_tau_topk(left, right, p=p)
        backward = kendall_tau_topk(right, left, p=p)
        assert 0.0 <= forward <= 1.0 + 1e-12
        assert abs(forward - backward) < 1e-12

    @settings(max_examples=150, deadline=None)
    @given(ranked_lists, penalties)
    def test_identity(self, ranking, p):
        assert kendall_tau_topk(ranking, ranking, p=p) == 0.0

    @settings(max_examples=150, deadline=None)
    @given(ranked_lists, ranked_lists)
    def test_monotone_in_penalty(self, left, right):
        low = kendall_tau_topk(left, right, p=0.0, normalize=False)
        high = kendall_tau_topk(left, right, p=1.0, normalize=False)
        assert high >= low - 1e-12


document_texts = st.lists(
    st.lists(words, min_size=1, max_size=8).map(" ".join),
    min_size=1, max_size=8)


class TestBM25:
    @settings(max_examples=80, deadline=None)
    @given(document_texts, words)
    def test_scores_nonnegative_and_normalized(self, texts, term):
        index = PositionalIndex()
        for unit, text in enumerate(texts):
            index.add(unit, text)
        scorer = BM25Scorer(index)
        keyword = Keyword.from_text(term)
        raw = scorer.scores(keyword)
        assert all(value > 0.0 for value in raw.values())
        normalized = scorer.normalized_scores(keyword)
        if normalized:
            assert max(normalized.values()) == 1.0
        # Only units actually containing the term are scored.
        for unit in raw:
            assert index.term_frequency(unit, term) > 0

    @settings(max_examples=80, deadline=None)
    @given(document_texts, words)
    def test_score_zero_iff_absent(self, texts, term):
        index = PositionalIndex()
        for unit, text in enumerate(texts):
            index.add(unit, text)
        scorer = BM25Scorer(index)
        keyword = Keyword.from_text(term)
        for unit, text in enumerate(texts):
            present = term in text.split()
            assert (scorer.score(unit, keyword) > 0.0) == present
