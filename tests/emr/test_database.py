"""Unit tests for the relational EMR database."""

import pytest

from repro.emr.database import EMRDatabase, IntegrityError
from repro.emr.schema import (ClinicalNote, Diagnosis, Encounter,
                              MedicationOrder, Patient, ProcedureRecord,
                              Provider, VitalSign)


@pytest.fixture
def database():
    db = EMRDatabase()
    db.insert_provider(Provider("P1", "Alice", "Chen"))
    db.insert_patient(Patient("PT1", "Maria", "Garcia", "F", "2001-02-03"))
    db.insert_encounter(Encounter("E1", "PT1", "P1", "2007-01-01",
                                  "2007-01-02"))
    return db


class TestInserts:
    def test_duplicate_primary_key(self, database):
        with pytest.raises(IntegrityError):
            database.insert_patient(
                Patient("PT1", "X", "Y", "M", "2000-01-01"))

    def test_encounter_requires_patient_and_provider(self, database):
        with pytest.raises(IntegrityError):
            database.insert_encounter(
                Encounter("E2", "NOPE", "P1", "2007-01-01", "2007-01-02"))
        with pytest.raises(IntegrityError):
            database.insert_encounter(
                Encounter("E2", "PT1", "NOPE", "2007-01-01", "2007-01-02"))

    def test_child_rows_require_encounter(self, database):
        with pytest.raises(IntegrityError):
            database.insert_diagnosis(
                Diagnosis("D1", "NOPE", "123", "Asthma"))
        with pytest.raises(IntegrityError):
            database.insert_note(ClinicalNote("N1", "NOPE", "plan", "txt"))


class TestQueries:
    def test_encounters_for(self, database):
        assert [e.encounter_id
                for e in database.encounters_for("PT1")] == ["E1"]

    def test_rows_grouped_by_encounter(self, database):
        database.insert_diagnosis(Diagnosis("D1", "E1", "1", "Asthma"))
        database.insert_medication_order(
            MedicationOrder("M1", "E1", "2", "Theophylline", "20 mg"))
        database.insert_vital_sign(
            VitalSign("V1", "E1", "3", "Heart rate", 88.0, "/min"))
        database.insert_procedure(
            ProcedureRecord("PR1", "E1", "4", "Pain control"))
        database.insert_note(ClinicalNote("N1", "E1", "plan", "ok"))
        assert len(database.diagnoses_for("E1")) == 1
        assert len(database.orders_for("E1")) == 1
        assert len(database.vitals_for("E1")) == 1
        assert len(database.procedures_for("E1")) == 1
        assert len(database.notes_for("E1")) == 1

    def test_ground_truth_accumulates(self, database):
        database.insert_diagnosis(Diagnosis("D1", "E1", "c-asthma",
                                            "Asthma"))
        database.insert_medication_order(
            MedicationOrder("M1", "E1", "c-theo", "Theophylline"))
        truth = database.ground_truth("PT1")
        assert truth.condition_codes == {"c-asthma"}
        assert truth.drug_codes == {"c-theo"}

    def test_stats(self, database):
        stats = database.stats()
        assert stats["patients"] == 1
        assert stats["encounters"] == 1

    def test_unknown_lookups(self, database):
        with pytest.raises(IntegrityError):
            database.patient("NOPE")
        with pytest.raises(IntegrityError):
            database.diagnoses_for("NOPE")
        with pytest.raises(IntegrityError):
            database.ground_truth("NOPE")
