"""Unit tests for laboratory results in the EMR and the CDA Results
section."""

import pytest

from repro.cda import build_cda_corpus, codes
from repro.emr import generate_cardiac_emr
from repro.emr.database import EMRDatabase, IntegrityError
from repro.emr.schema import (Encounter, LabResult, Patient, Provider)


class TestLabTable:
    @pytest.fixture
    def database(self):
        db = EMRDatabase()
        db.insert_provider(Provider("P1", "A", "B"))
        db.insert_patient(Patient("PT1", "C", "D", "F", "2001-01-01"))
        db.insert_encounter(Encounter("E1", "PT1", "P1", "2007-01-01",
                                      "2007-01-02"))
        return db

    def test_insert_and_query(self, database):
        database.insert_lab_result(LabResult(
            "L1", "E1", "2823-3", "Potassium", 4.1, "mmol/L",
            reference_range="3.4-4.7 mmol/L"))
        labs = database.labs_for("E1")
        assert len(labs) == 1
        assert labs[0].display_name == "Potassium"
        assert database.stats()["lab_results"] == 1

    def test_requires_encounter(self, database):
        with pytest.raises(IntegrityError):
            database.insert_lab_result(LabResult(
                "L1", "NOPE", "2823-3", "Potassium", 4.1, "mmol/L"))


class TestGeneratedLabs:
    @pytest.fixture(scope="class")
    def database(self):
        return generate_cardiac_emr(n_patients=8, seed=23)

    def test_every_encounter_has_a_panel(self, database):
        for patient in database.patients():
            for encounter in database.encounters_for(patient.patient_id):
                labs = database.labs_for(encounter.encounter_id)
                assert len(labs) >= 2
                for lab in labs:
                    assert lab.unit
                    assert lab.reference_range

    def test_abnormal_flags_consistent(self, database):
        for patient in database.patients():
            for encounter in database.encounters_for(patient.patient_id):
                for lab in database.labs_for(encounter.encounter_id):
                    low, high = lab.reference_range.split(" ")[0].split("-")
                    if lab.abnormal_flag == "H":
                        assert lab.value > float(high)
                    elif lab.abnormal_flag == "L":
                        assert lab.value < float(low)
                    else:
                        assert float(low) <= lab.value <= float(high)

    def test_abnormal_labs_reach_the_note(self, database):
        found = 0
        for patient in database.patients():
            for encounter in database.encounters_for(patient.patient_id):
                abnormal = [lab for lab
                            in database.labs_for(encounter.encounter_id)
                            if lab.abnormal_flag]
                notes = " ".join(
                    note.text for note
                    in database.notes_for(encounter.encounter_id))
                for lab in abnormal:
                    if lab.display_name in notes:
                        found += 1
        assert found > 0


class TestResultsSection:
    def test_cda_results_section_emitted(self):
        database = generate_cardiac_emr(n_patients=4, seed=23)
        corpus, _ = build_cda_corpus(database)
        document = next(iter(corpus))
        titles = [node.text for node in document.iter()
                  if node.tag == "title"]
        assert "Results" in titles

    def test_lab_observations_reference_loinc(self):
        database = generate_cardiac_emr(n_patients=4, seed=23)
        corpus, _ = build_cda_corpus(database)
        loinc_codes = {code for code, *_ in (
            ("718-7",), ("6690-2",), ("2823-3",), ("2951-2",),
            ("2160-0",), ("30934-4",), ("2157-6",))}
        found = set()
        for document in corpus:
            for node in document.code_nodes():
                if node.reference.system_code == codes.LOINC_OID:
                    found.add(node.reference.concept_code)
        assert found & loinc_codes
