"""Unit tests for the synthetic pediatric-cardiology generator."""

import pytest

from repro.emr.synth import (CardiacEMRGenerator, DEFAULT_EXCLUSIVE_GROUPS,
                             SynthConfig, generate_cardiac_emr)
from repro.ontology import snomed
from repro.ontology.snomed import build_synthetic_snomed


class TestGeneration:
    def test_deterministic(self):
        first = generate_cardiac_emr(n_patients=8, seed=42)
        second = generate_cardiac_emr(n_patients=8, seed=42)
        assert first.stats() == second.stats()
        for patient in first.patients():
            other = second.patient(patient.patient_id)
            assert patient == other

    def test_patient_count_respected(self):
        database = generate_cardiac_emr(n_patients=5, seed=1)
        assert database.stats()["patients"] == 5

    def test_every_encounter_has_content(self):
        database = generate_cardiac_emr(n_patients=6, seed=3)
        for patient in database.patients():
            encounters = database.encounters_for(patient.patient_id)
            assert encounters
            for encounter in encounters:
                eid = encounter.encounter_id
                assert database.diagnoses_for(eid)
                assert database.vitals_for(eid)
                assert database.notes_for(eid)

    def test_orders_reference_indications(self):
        database = generate_cardiac_emr(n_patients=6, seed=3)
        for patient in database.patients():
            for encounter in database.encounters_for(patient.patient_id):
                diagnosis_codes = {d.concept_code for d in
                                   database.diagnoses_for(
                                       encounter.encounter_id)}
                for order in database.orders_for(encounter.encounter_id):
                    if order.indication_code:
                        assert order.indication_code in diagnosis_codes

    def test_notes_mention_drugs(self):
        database = generate_cardiac_emr(n_patients=6, seed=3)
        mentioned = 0
        for patient in database.patients():
            for encounter in database.encounters_for(patient.patient_id):
                orders = database.orders_for(encounter.encounter_id)
                notes = " ".join(n.text for n in database.notes_for(
                    encounter.encounter_id))
                for order in orders:
                    if order.indication_code and \
                            order.display_name in notes:
                        mentioned += 1
        assert mentioned > 0

    def test_exclusive_groups_enforced(self):
        """Arrhythmia patients never carry fever/pain diagnoses, the
        corpus property behind Table I's all-zero row."""
        database = generate_cardiac_emr(n_patients=60, seed=5)
        group_a, group_b = DEFAULT_EXCLUSIVE_GROUPS[0]
        for patient in database.patients():
            codes = database.ground_truth(patient.patient_id).condition_codes
            assert not (codes & group_a and codes & group_b)

    def test_extra_concepts_from_ontology(self):
        ontology = build_synthetic_snomed()
        config = SynthConfig(n_patients=30, seed=9,
                             extra_concept_fraction=1.0)
        database = CardiacEMRGenerator(config, ontology).generate()
        generated_codes = set()
        for patient in database.patients():
            truth = database.ground_truth(patient.patient_id)
            generated_codes |= {code for code in truth.condition_codes
                                if code.startswith("92")}
        assert generated_codes

    def test_without_ontology_no_extra_concepts(self):
        database = generate_cardiac_emr(n_patients=10, seed=9)
        for patient in database.patients():
            truth = database.ground_truth(patient.patient_id)
            assert not any(code.startswith("92")
                           for code in truth.condition_codes)

    def test_vitals_use_snomed_observables(self):
        database = generate_cardiac_emr(n_patients=3, seed=2)
        codes = set()
        for patient in database.patients():
            for encounter in database.encounters_for(patient.patient_id):
                codes |= {v.concept_code for v in
                          database.vitals_for(encounter.encounter_id)}
        assert snomed.BODY_TEMPERATURE in codes
        assert snomed.HEART_RATE in codes
