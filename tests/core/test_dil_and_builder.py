"""Unit tests for XOnto-DIL structures and the index builder."""

import pytest

from repro.core.config import RELATIONSHIPS
from repro.core.index.builder import IndexBuilder
from repro.core.index.dil import (DeweyInvertedList, Posting,
                                  XOntoDILIndex)
from repro.core.index.vocabulary import (concepts_within_radius,
                                         corpus_vocabulary,
                                         experiment_vocabulary,
                                         full_vocabulary,
                                         referenced_concepts)
from repro.core.ontoscore import (RelationshipsOntoScore,
                                  relationships_seed_scorer)
from repro.core.scoring import ElementIndex
from repro.cda.sample import build_figure1_document
from repro.ir.tokenizer import Keyword
from repro.ontology import TerminologyService
from repro.ontology.snomed import (ASTHMA, BRONCHIAL_STRUCTURE,
                                   build_core_ontology)
from repro.storage.memory_store import MemoryStore
from repro.xmldoc.dewey import DeweyID
from repro.xmldoc.model import Corpus


@pytest.fixture(scope="module")
def pieces():
    ontology = build_core_ontology()
    terminology = TerminologyService([ontology])
    corpus = Corpus([build_figure1_document()])
    element_index = ElementIndex(corpus,
                                 concept_resolver=terminology.resolve)
    seeds = relationships_seed_scorer(ontology)
    strategy = RelationshipsOntoScore(ontology, seeds, t=0.5,
                                      threshold=0.1)
    builder = IndexBuilder(element_index, strategy)
    return ontology, corpus, builder


class TestDIL:
    def test_postings_sorted_by_dewey(self):
        keyword = Keyword.from_text("x")
        dil = DeweyInvertedList(keyword, [
            Posting(DeweyID(0, (2,)), 0.5),
            Posting(DeweyID(0, (1,)), 1.0),
        ])
        assert [p.dewey.encode() for p in dil] == ["0.1", "0.2"]

    def test_duplicate_dewey_rejected(self):
        keyword = Keyword.from_text("x")
        with pytest.raises(ValueError):
            DeweyInvertedList(keyword, [Posting(DeweyID(0, (1,)), 0.5),
                                        Posting(DeweyID(0, (1,)), 0.7)])

    def test_encoded_roundtrip(self):
        keyword = Keyword.from_text("x")
        dil = DeweyInvertedList(keyword, [Posting(DeweyID(3, (1, 2)), 0.25)])
        clone = DeweyInvertedList.from_encoded(keyword, dil.encoded())
        assert clone.postings() == dil.postings()

    def test_size_accounting(self):
        posting = Posting(DeweyID(0, (1, 2)), 0.5)
        assert posting.size_bytes() == len("0.1.2") + 8
        dil = DeweyInvertedList(Keyword.from_text("x"), [posting])
        assert dil.size_bytes() == posting.size_bytes()

    def test_document_ids(self):
        dil = DeweyInvertedList(Keyword.from_text("x"), [
            Posting(DeweyID(3, (0,)), 1.0), Posting(DeweyID(5, (0,)), 1.0)])
        assert dil.document_ids() == {3, 5}


class TestIndexBuilder:
    def test_build_keyword_measures(self, pieces):
        _, _, builder = pieces
        dil, stats = builder.build_keyword(Keyword.from_text("asthma"))
        assert len(dil) == stats.posting_count > 0
        assert stats.creation_time_ms >= 0.0
        assert stats.size_bytes == dil.size_bytes()
        assert stats.ontology_entries > 0

    def test_ontology_only_keyword_produces_postings(self, pieces):
        _, _, builder = pieces
        dil, _ = builder.build_keyword(
            Keyword.from_text("bronchial structure"))
        assert len(dil) > 0  # no textual occurrence in Figure 1

    def test_build_vocabulary(self, pieces):
        _, _, builder = pieces
        index = builder.build(["asthma", "theophylline", "asthma"])
        assert len(index) == 2
        assert index.keywords() == ["asthma", "theophylline"]
        averages = index.average_stats()
        assert averages["postings"] > 0

    def test_empty_index_averages(self):
        index = XOntoDILIndex(strategy="x")
        assert index.average_stats() == {"creation_time_ms": 0.0,
                                         "postings": 0.0, "size_kb": 0.0}

    def test_save_load_roundtrip(self, pieces):
        _, _, builder = pieces
        index = builder.build(["asthma", "medications"],
                              strategy_name=RELATIONSHIPS)
        store = MemoryStore()
        index.save(store)
        loaded = XOntoDILIndex.load(store, RELATIONSHIPS)
        assert loaded.keywords() == index.keywords()
        for key in index.keywords():
            keyword = Keyword.from_text(key)
            assert loaded.get(keyword).encoded() == \
                index.get(keyword).encoded()


class TestVocabulary:
    def test_corpus_vocabulary(self, pieces):
        _, corpus, _ = pieces
        words = corpus_vocabulary(corpus)
        assert "theophylline" in words
        assert "asthma" in words
        # Code strings are excluded by the text policy.
        assert ASTHMA not in words

    def test_referenced_concepts(self, pieces):
        ontology, corpus, _ = pieces
        codes = referenced_concepts(corpus, ontology)
        assert ASTHMA in codes

    def test_radius_growth(self, pieces):
        ontology, corpus, _ = pieces
        start = referenced_concepts(corpus, ontology)
        zero = concepts_within_radius(ontology, start, 0)
        one = concepts_within_radius(ontology, start, 1)
        two = concepts_within_radius(ontology, start, 2)
        assert zero == start
        assert zero < one <= two
        assert BRONCHIAL_STRUCTURE in one  # finding-site neighbor

    def test_radius_validation(self, pieces):
        ontology, _, _ = pieces
        with pytest.raises(ValueError):
            concepts_within_radius(ontology, set(), -1)

    def test_experiment_vocabulary_superset_of_corpus(self, pieces):
        ontology, corpus, _ = pieces
        corpus_words = corpus_vocabulary(corpus)
        experiment_words = experiment_vocabulary(corpus, ontology)
        assert corpus_words <= experiment_words
        assert "bronchial" in experiment_words

    def test_full_vocabulary_is_largest(self, pieces):
        ontology, corpus, _ = pieces
        assert experiment_vocabulary(corpus, ontology) <= \
            full_vocabulary(corpus, ontology)
