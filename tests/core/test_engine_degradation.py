"""Engine-level resilience: metadata validation on load, per-keyword
degraded rebuilds, and byte-identical results under injected faults."""

import pytest

from repro import (RELATIONSHIPS, XRANK, XOntoRankConfig,
                   XOntoRankEngine)
from repro.cda.sample import build_figure1_document
from repro.core.stats import (FALLBACK_REBUILDS, INTEGRITY_FAILURES,
                              RETRY_GIVEUPS)
from repro.ontology.snomed import build_core_ontology
from repro.storage.errors import (CorruptIndexError,
                                  IncompatibleIndexError,
                                  TransientStorageError)
from repro.storage.faults import FaultInjectingStore
from repro.storage.memory_store import MemoryStore
from repro.storage.retrying import RetryingStore
from repro.xmldoc.model import Corpus

VOCABULARY = {"asthma", "medications", "theophylline", "temperature"}
QUERIES = ("asthma medications", "theophylline temperature",
           '"bronchial structure" theophylline')


@pytest.fixture(scope="module")
def corpus(core_ontology):
    return Corpus([build_figure1_document()])


@pytest.fixture(scope="module")
def baseline(corpus, core_ontology):
    """A fault-free persisted index plus its search results."""
    engine = XOntoRankEngine(corpus, core_ontology,
                             strategy=RELATIONSHIPS)
    store = MemoryStore()
    engine.build_index(vocabulary=VOCABULARY, store=store)
    results = {query: ranked(engine, query) for query in QUERIES}
    return store, results


def ranked(engine, query):
    """Byte-comparable result form: encoded Dewey plus exact score."""
    return [(r.dewey.encode(), r.score) for r in engine.search(query,
                                                               k=10)]


def fresh_engine(corpus, ontology, **config_kwargs) -> XOntoRankEngine:
    config = XOntoRankConfig(**config_kwargs)
    return XOntoRankEngine(corpus, ontology, strategy=RELATIONSHIPS,
                           config=config)


class TestValidation:
    def test_clean_load_validates(self, corpus, core_ontology, baseline):
        store, _ = baseline
        engine = fresh_engine(corpus, core_ontology)
        assert engine.load_index(store) == len(VOCABULARY)
        assert engine.stats.value("engine.integrity.validations") == 1

    def test_incomplete_store_rejected(self, corpus, core_ontology):
        engine = fresh_engine(corpus, core_ontology)
        with pytest.raises(CorruptIndexError):
            engine.load_index(MemoryStore())
        assert engine.stats.value(INTEGRITY_FAILURES) == 1

    def test_parameter_mismatch_rejected(self, corpus, core_ontology,
                                         baseline):
        store, _ = baseline
        engine = fresh_engine(corpus, core_ontology, decay=0.4)
        with pytest.raises(IncompatibleIndexError, match="decay"):
            engine.load_index(store)

    def test_strategy_mismatch_rejected(self, corpus, baseline):
        store, _ = baseline
        engine = XOntoRankEngine(corpus, None, strategy=XRANK)
        with pytest.raises(IncompatibleIndexError, match="strategy"):
            engine.load_index(store)

    def test_corpus_mismatch_rejected(self, core_ontology, baseline):
        store, _ = baseline
        other = Corpus([build_figure1_document(),
                        build_figure1_document(doc_id=1)])
        engine = XOntoRankEngine(other, core_ontology,
                                 strategy=RELATIONSHIPS)
        with pytest.raises(IncompatibleIndexError, match="corpus"):
            engine.load_index(store)

    def test_validation_can_be_skipped(self, corpus, core_ontology,
                                       baseline):
        store, _ = baseline
        engine = fresh_engine(corpus, core_ontology, decay=0.4)
        # The operator override: validate=False loads anyway.
        assert engine.load_index(store,
                                 validate=False) == len(VOCABULARY)


class TestDegradedLoads:
    def test_corrupt_list_rebuilt_from_corpus(self, corpus,
                                              core_ontology, baseline):
        store, results = baseline
        chaotic = FaultInjectingStore(store,
                                      corrupt_keywords={"asthma"})
        engine = fresh_engine(corpus, core_ontology)
        assert engine.load_index(chaotic) == len(VOCABULARY)
        assert engine.stats.value(FALLBACK_REBUILDS) == 1
        for query in QUERIES:
            assert ranked(engine, query) == results[query]

    def test_corrupt_list_fatal_without_fallback(self, corpus,
                                                 core_ontology,
                                                 baseline):
        store, _ = baseline
        chaotic = FaultInjectingStore(store,
                                      corrupt_keywords={"asthma"})
        engine = fresh_engine(corpus, core_ontology)
        with pytest.raises(CorruptIndexError, match="asthma"):
            engine.load_index(chaotic, fallback=False)

    def test_exhausted_retries_fall_back(self, corpus, core_ontology,
                                         baseline):
        store, results = baseline

        class DeadKeywordStore(FaultInjectingStore):
            def get_postings(self, strategy, keyword):
                if keyword == "medications":
                    raise TransientStorageError("always down")
                return super().get_postings(strategy, keyword)

        engine = fresh_engine(corpus, core_ontology)
        reader = RetryingStore(DeadKeywordStore(store), max_attempts=3,
                               stats=engine.stats,
                               sleep=lambda _: None)
        assert engine.load_index(reader) == len(VOCABULARY)
        assert engine.stats.value(RETRY_GIVEUPS) == 1
        assert engine.stats.value(FALLBACK_REBUILDS) == 1
        for query in QUERIES:
            assert ranked(engine, query) == results[query]

    def test_transient_faults_fatal_without_fallback(self, corpus,
                                                     core_ontology,
                                                     baseline):
        store, _ = baseline

        class DeadStore(FaultInjectingStore):
            def get_postings(self, strategy, keyword):
                raise TransientStorageError("always down")

        engine = fresh_engine(corpus, core_ontology)
        with pytest.raises(TransientStorageError):
            engine.load_index(DeadStore(store), fallback=False)


class TestFaultedSearchIdentity:
    """The acceptance bar: transient faults at a 0.3 rate, retried and
    degraded as needed, must leave search results byte-identical to a
    fault-free run, with the counters visible."""

    RATE = 0.3

    def test_search_identical_under_faults(self, corpus, core_ontology,
                                           baseline):
        store, results = baseline
        engine = fresh_engine(corpus, core_ontology)
        chaotic = FaultInjectingStore(store, seed=29,
                                      transient_rate=self.RATE,
                                      stats=engine.stats)
        reader = RetryingStore(chaotic, max_attempts=10, seed=5,
                               stats=engine.stats, sleep=lambda _: None)
        engine.load_index(reader)
        for query in QUERIES:
            assert ranked(engine, query) == results[query]
        snapshot = engine.stats.snapshot()
        assert snapshot.get("faults.injected.transient", 0) > 0
        assert snapshot.get("storage.retry.attempts", 0) > 0
        rendered = engine.stats.render()
        assert "storage.retry.attempts" in rendered

    def test_repeat_runs_identical(self, corpus, core_ontology,
                                   baseline):
        store, results = baseline

        def run() -> dict:
            engine = fresh_engine(corpus, core_ontology)
            chaotic = FaultInjectingStore(store, seed=17,
                                          transient_rate=self.RATE)
            reader = RetryingStore(chaotic, max_attempts=10, seed=3,
                                   sleep=lambda _: None)
            engine.load_index(reader)
            return {query: ranked(engine, query) for query in QUERIES}

        first, second = run(), run()
        assert first == second == results
