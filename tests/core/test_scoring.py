"""Unit tests for Eq. 5 NodeScores and Eq. 2-4 propagation."""

import pytest

from repro.core.ontoscore import (NullOntoScore, RelationshipsOntoScore,
                                  relationships_seed_scorer)
from repro.core.scoring import (ElementIndex, NodeScorer, propagate_scores,
                                result_score)
from repro.ir.tokenizer import Keyword
from repro.ontology import TerminologyService
from repro.ontology.snomed import ASTHMA, build_core_ontology
from repro.xmldoc.dewey import DeweyID
from repro.xmldoc.model import Corpus
from repro.cda.sample import build_figure1_document


@pytest.fixture(scope="module")
def setup():
    ontology = build_core_ontology()
    terminology = TerminologyService([ontology])
    corpus = Corpus([build_figure1_document()])
    element_index = ElementIndex(corpus,
                                 concept_resolver=terminology.resolve)
    return ontology, corpus, element_index


class TestElementIndex:
    def test_every_element_indexed(self, setup):
        _, corpus, element_index = setup
        assert element_index.element_count() == \
            next(iter(corpus)).node_count()

    def test_code_node_concepts_resolved(self, setup):
        ontology, _, element_index = setup
        concepts = element_index.code_node_concepts()
        assert ASTHMA in concepts.values()
        # LOINC section codes reference a system we did not register.
        assert all(code in ontology for code in concepts.values())

    def test_irs_normalized(self, setup):
        _, _, element_index = setup
        scores = element_index.irs(Keyword.from_text("theophylline"))
        assert scores
        assert max(scores.values()) == pytest.approx(1.0)

    def test_concept_of(self, setup):
        _, _, element_index = setup
        concepts = element_index.code_node_concepts()
        dewey = next(iter(concepts))
        assert element_index.concept_of(dewey) == concepts[dewey]
        assert element_index.concept_of(DeweyID(99)) is None


class TestNodeScorer:
    def test_xrank_node_scores_are_pure_irs(self, setup):
        _, _, element_index = setup
        scorer = NodeScorer(element_index, NullOntoScore())
        keyword = Keyword.from_text("asthma")
        assert scorer.node_scores(keyword) == element_index.irs(keyword)

    def test_ontoscore_lifts_code_nodes(self, setup):
        ontology, _, element_index = setup
        seeds = relationships_seed_scorer(ontology)
        strategy = RelationshipsOntoScore(ontology, seeds, t=0.5,
                                          threshold=0.1)
        scorer = NodeScorer(element_index, strategy)
        keyword = Keyword.from_text("bronchial structure")
        scores = scorer.node_scores(keyword)
        # No textual match anywhere, yet the Asthma code node scores.
        assert element_index.irs(keyword) == {}
        asthma_nodes = [dewey for dewey, concept
                        in element_index.code_node_concepts().items()
                        if concept == ASTHMA]
        assert asthma_nodes
        for dewey in asthma_nodes:
            assert scores[dewey] == pytest.approx(0.5)

    def test_eq5_takes_max_of_irs_and_ontoscore(self, setup):
        ontology, _, element_index = setup
        seeds = relationships_seed_scorer(ontology)
        strategy = RelationshipsOntoScore(ontology, seeds, t=0.5,
                                          threshold=0.1)
        scorer = NodeScorer(element_index, strategy)
        keyword = Keyword.from_text("asthma")
        scores = scorer.node_scores(keyword)
        irs = element_index.irs(keyword)
        for dewey, value in scores.items():
            assert value >= irs.get(dewey, 0.0) - 1e-12


class TestPropagation:
    def test_eq2_decay_per_edge(self):
        scores = {DeweyID(0, (1, 2, 3)): 1.0}
        propagated = propagate_scores(scores, decay=0.5)
        assert propagated[DeweyID(0, (1, 2, 3))] == 1.0
        assert propagated[DeweyID(0, (1, 2))] == 0.5
        assert propagated[DeweyID(0, (1,))] == 0.25
        assert propagated[DeweyID(0)] == 0.125

    def test_eq3_max_over_descendants(self):
        scores = {DeweyID(0, (0, 0)): 1.0, DeweyID(0, (1,)): 0.9}
        propagated = propagate_scores(scores, decay=0.5)
        # Root sees 0.25 via the deep node and 0.45 via the shallow one.
        assert propagated[DeweyID(0)] == pytest.approx(0.45)

    def test_zero_scores_dropped(self):
        propagated = propagate_scores({DeweyID(0, (1,)): 0.0}, decay=0.5)
        assert propagated == {}

    def test_decay_validation(self):
        with pytest.raises(ValueError):
            propagate_scores({}, decay=0.0)

    def test_multiple_documents_independent(self):
        scores = {DeweyID(0, (1,)): 1.0, DeweyID(7, (2,)): 1.0}
        propagated = propagate_scores(scores, decay=0.5)
        assert propagated[DeweyID(0)] == 0.5
        assert propagated[DeweyID(7)] == 0.5

    def test_result_score_is_sum(self):
        assert result_score([0.5, 0.25, 1.0]) == pytest.approx(1.75)
        assert result_score([]) == 0.0
