"""The clinical-narrative query front-end.

Covers the whole mapping ladder (exact → synonym → parent-term →
plain-keyword degradation) on both terminology representations, the
specificity weighting and cap, the optional pipeline stage, and the
acceptance-criteria differential: with narrative mode off, engine,
federated and pre-parsed paths are byte-identical to a build that
never had the stage.
"""

import pytest

from repro import RELATIONSHIPS, XRANK, XOntoRankEngine
from repro.core import stats as counters
from repro.core.obs.tracer import Tracer
from repro.core.query.federated import FederatedEngine
from repro.core.query.narrative import (EXACT, KEYWORD, PARENT, SYNONYM,
                                        NarrativeQueryMapper,
                                        NarrativeStage)
from repro.core.stats import StatsRegistry
from repro.ir.tokenizer import KeywordQuery
from repro.ontology.api import TerminologyService
from repro.ontology.indexes import build_ontology_indexes
from repro.ontology.model import Concept, Ontology
from repro.storage.memory_store import MemoryStore


def _ladder_ontology() -> Ontology:
    """A taxonomy exercising every ladder rung.

    ``alpha flutter`` and ``beta flutter`` are cousins: their only
    common is-a ancestor is the *grandparent* ``tachyarrhythmia``, so
    the token run "flutter" (never a term by itself) can only resolve
    through it.
    """
    ontology = Ontology("test.ladder", "ladder fixture")
    ontology.add_concept(Concept("100", "Cardiovascular disorder"))
    ontology.add_concept(Concept("110", "Tachyarrhythmia"))
    ontology.add_concept(Concept("111", "Left tachycardia"))
    ontology.add_concept(Concept("112", "Right tachycardia"))
    ontology.add_concept(Concept("113", "Alpha flutter"))
    ontology.add_concept(Concept("114", "Beta flutter"))
    ontology.add_concept(Concept("200", "Fever", ("pyrexia",)))
    ontology.add_concept(Concept("300", "Amiodarone"))
    ontology.add_is_a("110", "100")
    ontology.add_is_a("111", "110")
    ontology.add_is_a("112", "110")
    ontology.add_is_a("113", "111")
    ontology.add_is_a("114", "112")
    ontology.add_is_a("200", "100")
    return ontology


@pytest.fixture(params=["graph", "index"])
def mapper(request):
    if request.param == "graph":
        service = TerminologyService([_ladder_ontology()])
    else:
        service = TerminologyService()
        service.register_indexes(
            build_ontology_indexes(_ladder_ontology(), MemoryStore()))
    return NarrativeQueryMapper(service)


class TestFallbackLadder:
    def test_exact_preferred_term(self, mapper):
        mapping = mapper.map("alpha flutter noted")
        (hit,) = mapping.by_method(EXACT)
        assert hit.concept_code == "113"
        assert hit.term == "alpha flutter"

    def test_synonym_normalizes_to_preferred_term(self, mapper):
        mapping = mapper.map("pyrexia on admission")
        (hit,) = mapping.by_method(SYNONYM)
        assert hit.concept_code == "200"
        assert hit.phrase == "pyrexia"
        assert hit.term == "fever"
        assert "fever" in str(mapping.query).split()

    def test_parent_term_via_grandparent_only(self, mapper):
        # "flutter" is not a term of any concept; its token hits the
        # two cousins 113/114, whose nearest common ancestor is the
        # grandparent 110.
        mapping = mapper.map("flutter episodes")
        (hit,) = mapping.by_method(PARENT)
        assert hit.concept_code == "110"
        assert hit.term == "tachyarrhythmia"
        assert set(hit.via) == {"113", "114"}

    def test_parent_term_single_candidate_is_itself(self, mapper):
        # A lone candidate generalizes to itself (reflexive ancestor
        # at depth zero): "alpha" only ever appears in 113's terms.
        mapping = mapper.map("alpha episodes")
        (hit,) = mapping.by_method(PARENT)
        assert hit.concept_code == "113"
        assert hit.via == ("113",)

    def test_unmappable_phrase_degrades_to_keywords(self, mapper):
        # Never silently dropped: every content token of an unmapped
        # run survives as a plain keyword.
        mapping = mapper.map("pyrexia with zebra stampede")
        (kept,) = mapping.by_method(KEYWORD)
        assert kept.phrase == "zebra stampede"
        assert kept.concept_code == ""
        query_terms = str(mapping.query).split()
        assert "zebra" in query_terms
        assert "stampede" in query_terms

    def test_stopwords_split_oov_runs(self, mapper):
        mapping = mapper.map("zebra and quagga")
        assert [m.phrase for m in mapping.by_method(KEYWORD)] == \
            ["zebra", "quagga"]

    def test_no_tokens_raises(self, mapper):
        with pytest.raises(ValueError):
            mapper.map("!!! ...")

    def test_stopword_only_text_still_queries(self, mapper):
        mapping = mapper.map("of the and")
        assert [k.text for k in mapping.query] == ["of", "the", "and"]


class TestSpecificityWeighting:
    def test_deeper_concept_outranks_shallow(self, mapper):
        # 113 (depth 3) must come before 200 (depth 1) in the emitted
        # query.
        mapping = mapper.map("fever then alpha flutter")
        terms = [k.text for k in mapping.query]
        assert terms.index("alpha flutter") < terms.index("fever")

    def test_cap_drops_least_specific_and_counts(self):
        stats = StatsRegistry()
        service = TerminologyService([_ladder_ontology()])
        capped = NarrativeQueryMapper(service, max_keywords=1,
                                      stats=stats)
        mapping = capped.map("fever then alpha flutter")
        assert [m.concept_code for m in mapping.mappings
                if m.method != KEYWORD] == ["113"]
        assert stats.value(counters.NARRATIVE_CONCEPTS_DROPPED) == 1

    def test_keyword_fallbacks_survive_the_cap(self):
        service = TerminologyService([_ladder_ontology()])
        capped = NarrativeQueryMapper(service, max_keywords=1)
        mapping = capped.map("fever then alpha flutter zebra")
        assert "zebra" in str(mapping.query).split()


class TestObservability:
    def test_span_and_counters(self):
        tracer = Tracer()
        stats = StatsRegistry()
        service = TerminologyService([_ladder_ontology()])
        mapper = NarrativeQueryMapper(service, tracer=tracer,
                                      stats=stats)
        mapper.map("pyrexia with alpha flutter and zebra")
        names = [span.name for span in tracer.finished()]
        assert "query.narrative.map" in names
        assert stats.value(counters.NARRATIVE_QUERIES) == 1
        assert stats.value(counters.NARRATIVE_MAPPED_EXACT) == 1
        assert stats.value(counters.NARRATIVE_MAPPED_SYNONYM) == 1
        assert stats.value(counters.NARRATIVE_KEYWORD_FALLBACKS) == 1
        assert stats.value(counters.NARRATIVE_PHRASES) == 3


class TestNarrativeStage:
    def test_stage_inserts_before_parse(self, figure1_corpus,
                                        core_ontology):
        engine = XOntoRankEngine(figure1_corpus, core_ontology)
        engine.enable_narrative()
        assert engine.pipeline.stage_names() == \
            ["narrative", "parse", "dil_fetch", "merge", "rank"]

    def test_double_enable_rejected(self, figure1_corpus,
                                    core_ontology):
        engine = XOntoRankEngine(figure1_corpus, core_ontology)
        engine.enable_narrative()
        with pytest.raises(ValueError):
            engine.enable_narrative()

    def test_xrank_engine_needs_explicit_mapper(self, figure1_corpus,
                                                core_ontology):
        engine = XOntoRankEngine(figure1_corpus, None, strategy=XRANK)
        with pytest.raises(ValueError):
            engine.enable_narrative()
        mapper = NarrativeQueryMapper(
            TerminologyService([core_ontology]))
        engine.enable_narrative(mapper)
        assert "narrative" in engine.pipeline.stage_names()

    def test_preparsed_query_passes_through(self, figure1_corpus,
                                            core_ontology):
        engine = XOntoRankEngine(figure1_corpus, core_ontology)
        engine.enable_narrative()
        query = KeywordQuery.parse("asthma medications")
        outcome = engine.search_outcome(query, k=3)
        assert outcome.narrative is None
        plain = XOntoRankEngine(figure1_corpus, core_ontology)
        assert outcome.results == plain.search_outcome(query, k=3).results

    def test_provenance_reaches_the_outcome(self, figure1_corpus,
                                            core_ontology):
        engine = XOntoRankEngine(figure1_corpus, core_ontology)
        engine.enable_narrative()
        outcome = engine.search_outcome("asthma and medications", k=3)
        assert outcome.narrative is not None
        assert outcome.narrative.text == "asthma and medications"
        methods = {m.method for m in outcome.narrative.mappings}
        assert EXACT in methods


class TestNarrativeOffDifferential:
    """Acceptance criterion: narrative off == never existed."""

    def test_default_pipeline_has_no_narrative_stage(self,
                                                     figure1_corpus,
                                                     core_ontology):
        engine = XOntoRankEngine(figure1_corpus, core_ontology)
        assert engine.pipeline.stage_names() == \
            ["parse", "dil_fetch", "merge", "rank"]

    def test_enable_disable_restores_identical_results(
            self, figure1_corpus, core_ontology):
        query = '"bronchial structure" theophylline'
        plain = XOntoRankEngine(figure1_corpus, core_ontology)
        toggled = XOntoRankEngine(figure1_corpus, core_ontology)
        before = plain.search_outcome(query, k=5)
        toggled.enable_narrative()
        toggled.disable_narrative()
        after = toggled.search_outcome(query, k=5)
        assert after.results == before.results
        assert after.narrative is None
        assert toggled.pipeline.stage_names() == \
            plain.pipeline.stage_names()

    def test_federated_narrative_matches_single(self, cda_corpus,
                                                synthetic_ontology):
        text = "was in cardiac arrest and is on amiodarone"
        single = XOntoRankEngine(cda_corpus, synthetic_ontology,
                                 strategy=RELATIONSHIPS)
        single.enable_narrative()
        federated = FederatedEngine(cda_corpus, synthetic_ontology,
                                    strategy=RELATIONSHIPS, shards=3)
        federated.enable_narrative()
        a = single.search_outcome(text, k=5)
        b = federated.search_outcome(text, k=5)
        assert [r.dewey for r in a.results] == [r.dewey for r in b.results]
        assert str(a.narrative.query) == str(b.narrative.query)

    def test_federated_off_path_untouched(self, cda_corpus,
                                          synthetic_ontology):
        query = '"cardiac arrest" amiodarone'
        baseline = FederatedEngine(cda_corpus, synthetic_ontology,
                                   shards=2)
        toggled = FederatedEngine(cda_corpus, synthetic_ontology,
                                  shards=2)
        toggled.enable_narrative()
        toggled.disable_narrative()
        a = baseline.search_outcome(query, k=5)
        b = toggled.search_outcome(query, k=5)
        assert a.results == b.results
        assert b.narrative is None
