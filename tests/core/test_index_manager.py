"""IndexManager lifecycle: fingerprint memoization, validated loads,
and the engine facade's lazily-shared components."""

from __future__ import annotations

import pytest

from repro.cda.sample import build_figure1_document
from repro.core.index import manager as manager_module
from repro.core.index.manager import memoized_corpus_fingerprint
from repro.core.obs import Tracer
from repro.core.query.engine import XOntoRankEngine, build_engines
from repro.core.stats import INTEGRITY_VALIDATIONS, StatsRegistry
from repro.storage.memory_store import MemoryStore
from repro.xmldoc.model import Corpus


@pytest.fixture()
def corpus():
    """A fresh corpus object per test -- the fingerprint memo is keyed
    by object identity, so sharing the session corpus would leak warm
    memo entries between tests."""
    return Corpus([build_figure1_document()])


@pytest.fixture()
def count_serializations(monkeypatch):
    """Count document serializations inside the manager module."""
    calls = []
    real = manager_module.serialize

    def counting(document, *args, **kwargs):
        calls.append(document)
        return real(document, *args, **kwargs)

    monkeypatch.setattr(manager_module, "serialize", counting)
    return calls


class TestFingerprintMemo:
    def test_serializes_at_most_once(self, corpus,
                                     count_serializations):
        first = memoized_corpus_fingerprint(corpus)
        assert len(count_serializations) == len(corpus)
        second = memoized_corpus_fingerprint(corpus)
        assert second == first
        assert len(count_serializations) == len(corpus)  # no re-walk

    def test_invalidated_when_corpus_changes(self, corpus,
                                             count_serializations):
        before = memoized_corpus_fingerprint(corpus)
        document = build_figure1_document()
        document.doc_id = 1
        corpus.add(document)
        after = memoized_corpus_fingerprint(corpus)
        assert after != before
        assert len(count_serializations) == 1 + 2  # full re-walk

    def test_build_seeds_the_memo(self, corpus, count_serializations):
        """The build path serializes every document to persist it; the
        memo is seeded from those texts, so the subsequent validated
        load serializes nothing."""
        store = MemoryStore()
        engine = XOntoRankEngine(corpus, strategy="xrank")
        engine.build_index(vocabulary={"asthma"}, store=store)
        builds = len(count_serializations)
        loader = XOntoRankEngine(corpus, strategy="xrank")
        loader.load_index(store, validate=True)
        assert len(count_serializations) == builds  # memo hit
        assert loader.stats.value(INTEGRITY_VALIDATIONS) == 1

    def test_repeated_loads_validate_without_serializing(
            self, corpus, count_serializations):
        store = MemoryStore()
        XOntoRankEngine(corpus, strategy="xrank").build_index(
            vocabulary={"asthma"}, store=store)
        loader = XOntoRankEngine(corpus, strategy="xrank")
        loader.load_index(store)
        marker = len(count_serializations)
        loader.load_index(store)
        loader.load_index(store)
        assert len(count_serializations) == marker
        assert loader.stats.value(INTEGRITY_VALIDATIONS) == 3


class TestEngineFacade:
    def test_search_naive_reuses_one_evaluator(self, corpus):
        engine = XOntoRankEngine(corpus, strategy="xrank")
        assert engine._naive_evaluator is None
        first = engine.search_naive("asthma", k=5)
        evaluator = engine._naive_evaluator
        assert evaluator is not None
        second = engine.search_naive("asthma", k=5)
        assert engine._naive_evaluator is evaluator
        assert [(r.dewey, r.score) for r in first] == \
            [(r.dewey, r.score) for r in second]

    def test_facade_views_delegate_to_manager(self, corpus):
        engine = XOntoRankEngine(corpus, strategy="xrank")
        assert engine.builder is engine.index_manager.builder
        assert engine.dil_cache is engine.index_manager.dil_cache
        assert engine.pipeline.stage_names() == \
            ["parse", "dil_fetch", "merge", "rank"]


class TestBuildEngines:
    def test_threads_shared_tracer_and_stats(self, corpus,
                                             core_ontology):
        tracer = Tracer()
        stats = StatsRegistry()
        engines = build_engines(corpus, core_ontology, tracer=tracer,
                                stats=stats)
        for engine in engines.values():
            assert engine.stats is stats
            assert engine.tracer is tracer
        assert tracer.registry is stats
        for engine in engines.values():
            engine.search("asthma", k=3)
        timer = stats.timers().get("query.search")
        assert timer is not None and timer.count == len(engines)

    def test_defaults_to_private_registries(self, corpus,
                                            core_ontology):
        engines = build_engines(corpus, core_ontology)
        registries = [engine.stats for engine in engines.values()]
        assert len({id(registry) for registry in registries}) == \
            len(registries)
