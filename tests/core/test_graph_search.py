"""Unit tests for the graph-search variant (ID/reference edges)."""

import pytest

from repro import RELATIONSHIPS, XRANK, XOntoRankEngine
from repro.cda.sample import build_figure1_document
from repro.core.query.graph_search import GraphSearchEngine
from repro.xmldoc.model import Corpus
from repro.xmldoc.parser import parse_document


def engine_for(corpus, ontology=None, strategy=XRANK, **kwargs):
    base = XOntoRankEngine(corpus, ontology, strategy=strategy)
    return GraphSearchEngine(corpus, base.builder.node_scorer, **kwargs)


class TestGraphStructure:
    def test_link_edges_extracted(self, core_ontology):
        corpus = Corpus([build_figure1_document()])
        engine = engine_for(corpus)
        assert engine.link_edge_count == 1  # the m1 reference

    def test_parameter_validation(self, core_ontology):
        corpus = Corpus([build_figure1_document()])
        base = XOntoRankEngine(corpus, None, strategy=XRANK)
        with pytest.raises(ValueError):
            GraphSearchEngine(corpus, base.builder.node_scorer, decay=0.0)
        with pytest.raises(ValueError):
            GraphSearchEngine(corpus, base.builder.node_scorer,
                              max_radius=0)


class TestSemantics:
    def test_tree_results_still_found(self):
        corpus = Corpus([parse_document(
            "<doc><s><a>asthma</a><b>theophylline</b></s></doc>")])
        results = engine_for(corpus).search("asthma theophylline", k=5)
        assert results
        # Graph semantics anchor answers at the evidence nodes: the best
        # roots are the match elements themselves, each reaching the
        # other keyword through the shared <s> parent.
        top = results[0]
        assert {node.encode() for node in top.evidence} == \
            {"0.0.0", "0.0.1"}
        assert top.score == pytest.approx(1.25)  # 1.0 + 0.5^2

    def test_link_edge_bridges_across_subtrees(self):
        """Nodes joined only by a reference edge form an answer the tree
        semantics cannot express at that proximity."""
        corpus = Corpus([parse_document(
            '<doc><left><x ID="t1">asthma</x></left>'
            '<right><y><reference value="t1"/>theophylline</y></right>'
            "</doc>")])
        engine = engine_for(corpus)
        assert engine.link_edge_count == 1
        results = engine.search("asthma theophylline", k=5)
        assert results
        top = results[0]
        # The best root reaches 'asthma' through the reference edge in
        # one hop rather than through the document root in three.
        assert top.score > 1.0

    def test_missing_keyword_no_results(self):
        corpus = Corpus([parse_document("<doc><a>asthma</a></doc>")])
        assert engine_for(corpus).search("asthma zebra") == []

    def test_radius_bounds_reach(self):
        corpus = Corpus([parse_document(
            "<doc><a><b><c><d><e>asthma</e></d></c></b></a>"
            "<z>theophylline</z></doc>")])
        narrow = engine_for(corpus, max_radius=2)
        wide = engine_for(corpus, max_radius=8)
        assert narrow.search("asthma theophylline") == []
        assert wide.search("asthma theophylline")

    def test_most_specific_roots_only(self):
        corpus = Corpus([parse_document(
            "<doc><s><a>asthma</a><b>theophylline</b></s></doc>")])
        results = engine_for(corpus, max_radius=8).search(
            "asthma theophylline", k=50)
        roots = [result.root for result in results]
        for index, first in enumerate(roots):
            for second in roots[index + 1:]:
                assert not first.is_ancestor_of(second)
                assert not second.is_ancestor_of(first)


class TestOntologyTransfer:
    def test_ontology_scores_transfer_to_graph_search(self,
                                                      core_ontology):
        """Section III's claim: the same NodeScorer plugs into the graph
        algorithm, carrying OntoScores with it."""
        corpus = Corpus([build_figure1_document()])
        query = '"bronchial structure" theophylline'
        plain = engine_for(corpus, strategy=XRANK)
        aware = engine_for(corpus, core_ontology, strategy=RELATIONSHIPS)
        assert plain.search(query) == []
        results = aware.search(query, k=5)
        assert results

    def test_figure1_reference_link_shortens_the_answer(self,
                                                        core_ontology):
        """Figure 1's m1 link ties the Asthma observation to the
        Theophylline narrative: graph search can use it."""
        corpus = Corpus([build_figure1_document()])
        aware = engine_for(corpus, core_ontology, strategy=RELATIONSHIPS)
        results = aware.search("asthma theophylline", k=10)
        assert results
        # The best result's evidence sits within a small radius thanks
        # to the reference edge (score well above the tree-only LCA
        # route through the section).
        assert results[0].score >= 1.0
