"""Unit tests for the authority-flow expansion engines (Section VI)."""

import pytest

from repro.core.ontoscore.base import (NullOntoScore, best_first_expansion,
                                       level_order_expansion)
from repro.ir.tokenizer import Keyword


def chain_neighbors(edges):
    """Adjacency helper: edges maps node -> [(neighbor, factor), ...]."""
    def neighbors(node):
        return edges.get(node, [])
    return neighbors


class TestBestFirst:
    def test_single_seed_decay(self):
        edges = {"a": [("b", 0.5)], "b": [("c", 0.5)], "c": [("d", 0.5)]}
        scores = best_first_expansion({"a": 1.0},
                                      chain_neighbors(edges), 0.1)
        assert scores == {"a": 1.0, "b": 0.5, "c": 0.25, "d": 0.125}

    def test_threshold_prunes(self):
        edges = {"a": [("b", 0.05)]}
        scores = best_first_expansion({"a": 1.0},
                                      chain_neighbors(edges), 0.1)
        assert scores == {"a": 1.0}

    def test_max_combination_over_paths(self):
        # Two paths to c: direct weak (0.2) and indirect strong (0.81).
        edges = {"a": [("c", 0.2), ("b", 0.9)], "b": [("c", 0.9)]}
        scores = best_first_expansion({"a": 1.0},
                                      chain_neighbors(edges), 0.1)
        assert scores["c"] == pytest.approx(0.81)

    def test_merged_seeds_take_max(self):
        edges = {"a": [("x", 0.5)], "b": [("x", 0.5)]}
        scores = best_first_expansion({"a": 1.0, "b": 0.4},
                                      chain_neighbors(edges), 0.1)
        assert scores["x"] == pytest.approx(0.5)

    def test_cycles_terminate(self):
        edges = {"a": [("b", 1.0)], "b": [("a", 1.0)]}
        scores = best_first_expansion({"a": 0.8},
                                      chain_neighbors(edges), 0.1)
        assert scores == {"a": 0.8, "b": 0.8}

    def test_weak_seed_can_be_overridden_by_flow(self):
        edges = {"a": [("b", 0.9)]}
        scores = best_first_expansion({"a": 1.0, "b": 0.2},
                                      chain_neighbors(edges), 0.1)
        assert scores["b"] == pytest.approx(0.9)

    def test_seeds_below_threshold_dropped_from_result(self):
        scores = best_first_expansion({"a": 0.05}, chain_neighbors({}), 0.1)
        assert scores == {}

    def test_invalid_factor_rejected(self):
        edges = {"a": [("b", 1.5)]}
        with pytest.raises(ValueError):
            best_first_expansion({"a": 1.0}, chain_neighbors(edges), 0.1)

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ValueError):
            best_first_expansion({}, chain_neighbors({}), 1.0)


class TestLevelOrder:
    def test_matches_best_first_on_uniform_factors(self):
        edges = {"a": [("b", 0.5), ("c", 0.5)],
                 "b": [("d", 0.5)], "c": [("d", 0.5)],
                 "d": [("e", 0.5)]}
        seeds = {"a": 1.0}
        exact = best_first_expansion(seeds, chain_neighbors(edges), 0.01)
        literal = level_order_expansion(seeds, chain_neighbors(edges), 0.01)
        assert exact == literal

    def test_can_underapproximate_on_nonuniform_factors(self):
        # Level-order expands b at its first (weak) arrival; the strong
        # path arrives after b already expanded, so c is under-scored.
        edges = {"a": [("b", 0.2), ("m", 0.9)], "m": [("b", 0.9)],
                 "b": [("c", 0.9)]}
        seeds = {"a": 1.0}
        exact = best_first_expansion(seeds, chain_neighbors(edges), 0.01)
        literal = level_order_expansion(seeds, chain_neighbors(edges), 0.01)
        assert exact["b"] == pytest.approx(0.81)
        # The literal variant still records the best arrival score at b
        # (Observation 1 merges with max) ...
        assert literal["b"] == pytest.approx(0.81)
        # ... but c was derived from the premature expansion of b.
        assert literal["c"] < exact["c"]

    def test_observation1_merges_with_max(self):
        edges = {"a": [("x", 0.5)], "b": [("x", 0.9)]}
        scores = level_order_expansion({"a": 1.0, "b": 1.0},
                                       chain_neighbors(edges), 0.1)
        assert scores["x"] == pytest.approx(0.9)


class TestNullStrategy:
    def test_always_empty(self):
        null = NullOntoScore()
        assert null.compute(Keyword.from_text("asthma")) == {}
        assert null.score("anything", Keyword.from_text("asthma")) == 0.0
