"""Unit tests for compact result snippets."""

import pytest

from repro import RELATIONSHIPS
from repro.xmldoc.navigation import subtree_size


class TestSnippets:
    def test_snippet_no_larger_than_fragment(self, figure1_engines):
        engine = figure1_engines[RELATIONSHIPS]
        query = "theophylline temperature"
        results = engine.search(query, k=3)
        assert results
        for result in results:
            fragment = engine.fragment(result)
            snippet = engine.snippet(result, query)
            assert subtree_size(snippet) <= subtree_size(fragment)
            assert snippet.tag == fragment.tag

    def test_snippet_keeps_contributors(self, figure1_engines):
        engine = figure1_engines[RELATIONSHIPS]
        query = "asthma medications"
        result = engine.search(query, k=1)[0]
        explanation = engine.explain(result, query)
        snippet = engine.snippet(result, query)
        text = snippet.subtree_text().lower()
        # Both contributing elements survive the pruning.
        assert "asthma" in text
        assert "medications" in text
        assert len(explanation.evidence) == 2

    def test_snippet_prunes_unrelated_siblings(self):
        # A document where the two keywords sit in different branches of
        # a wide section: the snippet keeps the two spines only.
        from repro import XRANK, XOntoRankEngine
        from repro.xmldoc import Corpus
        from repro.xmldoc.parser import parse_document
        document = parse_document(
            "<doc><s><a><p>asthma noted</p></a>"
            "<noise><n1/><n2/><n3/></noise>"
            "<b><q>theophylline given</q></b></s></doc>")
        engine = XOntoRankEngine(Corpus([document]), None,
                                 strategy=XRANK)
        query = "asthma theophylline"
        result = engine.search(query, k=1)[0]
        fragment = engine.fragment(result)
        snippet = engine.snippet(result, query)
        assert subtree_size(snippet) < subtree_size(fragment)
        assert snippet.find("noise") is None
        assert "asthma" in snippet.subtree_text()
        assert "theophylline" in snippet.subtree_text()

    def test_snippet_text_renders(self, figure1_engines):
        engine = figure1_engines[RELATIONSHIPS]
        query = "asthma medications"
        result = engine.search(query, k=1)[0]
        assert engine.snippet_text(result, query).startswith("<")
