"""QueryPipeline: the explicit parse → dil_fetch → merge → rank chain
and its stage-surgery surface."""

from __future__ import annotations

import pytest

from repro.cda.sample import build_figure1_document
from repro.core.query.engine import XOntoRankEngine
from repro.core.query.pipeline import (QueryContext, QueryPipeline,
                                       QueryStage)
from repro.xmldoc.model import Corpus


@pytest.fixture(scope="module")
def engine():
    return XOntoRankEngine(Corpus([build_figure1_document()]),
                           strategy="xrank")


class Recorder(QueryStage):
    """Test stage: snapshots the context it observed."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.seen: list[QueryContext] = []

    def run(self, context: QueryContext) -> None:
        self.seen.append(context)
        context.extras[self.name] = len(context.dils)


class TestDefaultChain:
    def test_stage_names(self, engine):
        assert engine.pipeline.stage_names() == \
            ["parse", "dil_fetch", "merge", "rank"]

    def test_run_fills_every_context_field(self, engine):
        context = engine.pipeline.run("asthma medications", k=5)
        assert context.parsed is not None
        assert [keyword.text for keyword in context.parsed] == \
            ["asthma", "medications"]
        assert len(context.dils) == 2
        assert context.results == sorted(
            context.unranked,
            key=lambda r: (-r.score, r.dewey))[:5]

    def test_matches_engine_search(self, engine):
        query, k = "asthma temperature", 4
        via_pipeline = engine.pipeline.run(query, k=k).results
        via_engine = engine.search(query, k=k)
        assert [(r.dewey, r.score) for r in via_pipeline] == \
            [(r.dewey, r.score) for r in via_engine]

    def test_pre_parsed_queries_pass_through(self, engine):
        from repro.ir.tokenizer import KeywordQuery
        parsed = KeywordQuery.parse("asthma")
        context = engine.pipeline.run(parsed, k=3)
        assert context.parsed is parsed

    def test_empty_query_raises(self, engine):
        with pytest.raises(ValueError):
            engine.pipeline.run("", k=3)

    def test_bounded_merge_makes_rank_a_pass_through(self, engine):
        """With k set, the merge stage runs the bounded mode and marks
        the context; the rank stage then hands the heap-drain through
        unchanged."""
        context = engine.pipeline.run("asthma medications", k=3)
        assert context.extras.get("merge_bounded") is True
        assert context.results == context.unranked
        assert len(context.results) <= 3

    def test_unbounded_run_ranks_all_results(self, engine):
        """k=None keeps the paper's full enumeration: the merge stage
        collects every Eq. 1 result and the rank stage sorts them."""
        context = engine.pipeline.run("asthma medications", k=None)
        assert "merge_bounded" not in context.extras
        bounded = engine.pipeline.run("asthma medications", k=3)
        assert bounded.results == context.results[:3]


class TestSurgery:
    def make_pipeline(self, engine):
        return QueryPipeline.default(engine.index_manager.dil_for,
                                     engine.processor)

    def test_insert_after_observes_upstream_artifacts(self, engine):
        pipeline = self.make_pipeline(engine)
        probe = Recorder("probe")
        pipeline.insert_after("dil_fetch", probe)
        assert pipeline.stage_names() == \
            ["parse", "dil_fetch", "probe", "merge", "rank"]
        context = pipeline.run("asthma", k=3)
        assert probe.seen == [context]
        assert context.extras["probe"] == 1

    def test_insert_before_can_rewrite_the_query(self, engine):
        class Rewriter(QueryStage):
            name = "rewrite"

            def run(self, context: QueryContext) -> None:
                context.query = "asthma"

        pipeline = self.make_pipeline(engine)
        pipeline.insert_before("parse", Rewriter())
        context = pipeline.run("completely ignored", k=3)
        assert [keyword.text for keyword in context.parsed] == \
            ["asthma"]

    def test_replace_and_remove(self, engine):
        pipeline = self.make_pipeline(engine)
        stand_in = Recorder("rank")
        pipeline.replace("rank", stand_in)
        context = pipeline.run("asthma", k=3)
        assert context.results == []  # the stand-in ranks nothing
        assert stand_in.seen == [context]
        removed = pipeline.remove("rank")
        assert removed is stand_in
        assert pipeline.stage_names() == \
            ["parse", "dil_fetch", "merge"]

    def test_stage_lookup(self, engine):
        pipeline = self.make_pipeline(engine)
        assert pipeline.stage("merge").processor is engine.processor
        with pytest.raises(KeyError):
            pipeline.stage("missing")
        with pytest.raises(KeyError):
            pipeline.insert_before("missing", Recorder("x"))

    def test_duplicate_names_rejected(self, engine):
        pipeline = self.make_pipeline(engine)
        with pytest.raises(ValueError):
            pipeline.insert_after("merge", Recorder("parse"))
        # The failed insert must not leave the duplicate behind.
        assert pipeline.stage_names() == \
            ["parse", "dil_fetch", "merge", "rank"]
