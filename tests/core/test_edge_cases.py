"""Edge-case tests across the engine surface."""

import pytest

from repro import (RELATIONSHIPS, XRANK, Keyword, KeywordQuery,
                   XOntoRankEngine)
from repro.ontology.snomed import build_core_ontology
from repro.xmldoc.model import Corpus, XMLDocument, XMLNode
from repro.xmldoc.parser import parse_document


class TestDegenerateCorpora:
    def test_empty_corpus(self):
        engine = XOntoRankEngine(Corpus(), None, strategy=XRANK)
        assert engine.search("anything") == []

    def test_single_node_document(self):
        corpus = Corpus([XMLDocument(doc_id=0,
                                     root=XMLNode("note",
                                                  text="asthma attack"))])
        engine = XOntoRankEngine(corpus, None, strategy=XRANK)
        results = engine.search("asthma attack")
        assert len(results) == 1
        assert results[0].dewey.encode() == "0"

    def test_empty_corpus_with_ontology(self, core_ontology):
        engine = XOntoRankEngine(Corpus(), core_ontology,
                                 strategy=RELATIONSHIPS)
        assert engine.search("asthma") == []

    def test_unicode_text(self):
        corpus = Corpus([parse_document(
            "<doc><p>sténose aortique sévère</p>"
            "<q>théophylline prescrite</q></doc>")])
        engine = XOntoRankEngine(corpus, None, strategy=XRANK)
        assert engine.search("sténose théophylline")


class TestQueryShapes:
    @pytest.fixture(scope="class")
    def engine(self, figure1_corpus, core_ontology):
        return XOntoRankEngine(figure1_corpus, core_ontology,
                               strategy=RELATIONSHIPS)

    def test_duplicate_keywords_allowed(self, engine):
        query = KeywordQuery((Keyword.from_text("asthma"),
                              Keyword.from_text("asthma")))
        results = engine.search(query, k=5)
        assert results
        for result in results:
            assert result.keyword_scores[0] == \
                pytest.approx(result.keyword_scores[1])

    def test_k_larger_than_result_count(self, engine):
        results = engine.search("theophylline", k=10_000)
        assert 0 < len(results) < 100

    def test_single_keyword_query(self, engine):
        results = engine.search("medications", k=5)
        assert results

    def test_five_keyword_query(self, engine):
        results = engine.search(
            "asthma medications theophylline temperature pulse", k=5)
        # All five must be covered somewhere for any result to appear;
        # either outcome is legal, but the call must not error.
        assert isinstance(results, list)

    def test_query_of_only_stopword_like_terms(self, engine):
        # 'the' is a stopword for vocabulary building but still a legal
        # query token; it appears in the dosing narrative? If not, no
        # results -- must not crash.
        results = engine.search("the", k=5)
        assert isinstance(results, list)

    def test_whitespace_query_rejected(self, engine):
        with pytest.raises(ValueError):
            engine.search("   ")


class TestCacheConsistency:
    def test_repeated_searches_are_stable(self, figure1_corpus,
                                          core_ontology):
        engine = XOntoRankEngine(figure1_corpus, core_ontology,
                                 strategy=RELATIONSHIPS)
        first = engine.search("asthma medications", k=5)
        second = engine.search("asthma medications", k=5)
        assert [(r.dewey, r.score) for r in first] == \
            [(r.dewey, r.score) for r in second]

    def test_prebuilt_index_equals_lazy(self, core_ontology):
        from repro.cda.sample import build_figure1_document
        corpus = Corpus([build_figure1_document()])
        lazy = XOntoRankEngine(corpus, core_ontology,
                               strategy=RELATIONSHIPS)
        prebuilt = XOntoRankEngine(corpus, core_ontology,
                                   strategy=RELATIONSHIPS)
        prebuilt.build_index(vocabulary={"asthma", "medications"})
        query = "asthma medications"
        assert [(r.dewey, r.score) for r in lazy.search(query, k=5)] == \
            [(r.dewey, r.score) for r in prebuilt.search(query, k=5)]


class TestDeepAndWideTrees:
    def test_very_deep_document(self):
        depth = 60
        xml = "".join(f"<l{i}>" for i in range(depth)) + "asthma attack" \
            + "".join(f"</l{i}>" for i in reversed(range(depth)))
        corpus = Corpus([parse_document(f"<root>{xml}<z>inhaler</z></root>")])
        engine = XOntoRankEngine(corpus, None, strategy=XRANK)
        results = engine.search("asthma inhaler", k=3)
        # Deep decay may push the connecting score near zero but the
        # result must still surface (scores stay positive).
        assert results
        assert results[0].score > 0.0

    def test_very_wide_document(self):
        children = "".join(f"<e>word{i}</e>" for i in range(500))
        corpus = Corpus([parse_document(
            f"<root><a>asthma</a>{children}<b>inhaler</b></root>")])
        engine = XOntoRankEngine(corpus, None, strategy=XRANK)
        results = engine.search("asthma inhaler", k=3)
        assert [r.dewey.encode() for r in results] == ["0"]
