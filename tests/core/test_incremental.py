"""Unit tests for the incremental segment lifecycle: validation,
observability gauges, and shard routing of mutations."""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.config import RELATIONSHIPS, XRANK, XOntoRankConfig
from repro.core.query.engine import XOntoRankEngine
from repro.core.stats import (APPEND_DOCS, COMPACTIONS, SEGMENTS_LIVE,
                              TOMBSTONES)
from repro.ontology.snomed import build_core_ontology
from repro.storage import MemoryStore, load_catalog
from repro.storage.errors import IncompatibleIndexError
from repro.xmldoc.model import Corpus, XMLDocument, XMLNode
from repro.xmldoc.sharding import ROUND_ROBIN, ShardedCorpus, \
    hash_shard

_ONTOLOGY = build_core_ontology()


def tiny_document(doc_id: int, text: str) -> XMLDocument:
    return XMLDocument(doc_id=doc_id,
                       root=XMLNode("record", {}, text=text))


DOCUMENTS = [tiny_document(0, "asthma fever"),
             tiny_document(1, "cardiac arrest"),
             tiny_document(2, "chronic pain")]
EXTRA = tiny_document(3, "valve stenosis")


def built(strategy=XRANK, config=None, documents=DOCUMENTS):
    ontology = _ONTOLOGY if strategy != XRANK else None
    engine = XOntoRankEngine(Corpus(list(documents)), ontology,
                             strategy=strategy,
                             config=config or XOntoRankConfig())
    store = MemoryStore()
    engine.build_index(store=store)
    return engine, store


class TestLifecycleValidation:
    def test_elemrank_config_rejected(self):
        engine, store = built(
            config=XOntoRankConfig(use_elemrank=False))
        engine.config = dataclasses.replace(engine.config,
                                            use_elemrank=True)
        engine.index_manager.config = engine.config
        with pytest.raises(ValueError, match="use_elemrank"):
            engine.add_documents([EXTRA], store)

    def test_strategy_mismatch_rejected(self):
        _, store = built(strategy=XRANK)
        other = XOntoRankEngine(Corpus(list(DOCUMENTS)), _ONTOLOGY,
                                strategy=RELATIONSHIPS,
                                config=XOntoRankConfig())
        with pytest.raises(IncompatibleIndexError):
            other.add_documents([EXTRA], store)

    def test_parameter_mismatch_rejected(self):
        _, store = built(strategy=RELATIONSHIPS)
        other = XOntoRankEngine(Corpus(list(DOCUMENTS)), _ONTOLOGY,
                                strategy=RELATIONSHIPS,
                                config=XOntoRankConfig(decay=0.25))
        with pytest.raises(IncompatibleIndexError):
            other.add_documents([EXTRA], store)

    def test_corpus_content_mismatch_rejected(self):
        engine, store = built()
        mutated = [tiny_document(0, "tampered text"),
                   DOCUMENTS[1], DOCUMENTS[2]]
        other = XOntoRankEngine(Corpus(mutated), None, strategy=XRANK,
                                config=XOntoRankConfig())
        with pytest.raises(IncompatibleIndexError):
            other.add_documents([EXTRA], store)

    def test_mutation_requires_a_store(self):
        engine, _ = built()
        with pytest.raises(ValueError):
            engine.add_documents([EXTRA], None)


class TestLifecycleGauges:
    def test_segment_and_tombstone_gauges_track_the_catalog(self):
        engine, store = built()
        stats = engine.stats
        engine.add_documents([EXTRA], store)
        assert stats.value(SEGMENTS_LIVE) == 2
        assert stats.value(APPEND_DOCS) == 1
        assert stats.value(TOMBSTONES) == 0

        engine.remove_documents([0], store)
        assert stats.value(TOMBSTONES) == 1
        catalog = load_catalog(store)
        assert catalog.live_set == {1, 2, 3}

        engine.compact(store)
        assert stats.value(COMPACTIONS) == 1
        assert stats.value(SEGMENTS_LIVE) == 1
        assert stats.value(TOMBSTONES) == 0
        catalog = load_catalog(store)
        assert len(catalog.segments) == 1
        assert catalog.live_set == {1, 2, 3}

    def test_compact_store_without_catalog_is_a_no_op(self):
        from repro.core.index.segments import compact_store
        _, store = built()
        assert compact_store(store) is None
        assert load_catalog(store) is None

    def test_engine_compact_bootstraps_then_compacts(self):
        engine, store = built()
        catalog = engine.compact(store)
        assert len(catalog.segments) == 1
        assert catalog.live_set == {0, 1, 2}
        assert load_catalog(store) == catalog

    def test_corpus_follows_mutations(self):
        engine, store = built()
        engine.add_documents([EXTRA], store)
        assert 3 in {doc.doc_id for doc in engine.corpus}
        engine.remove_documents([3], store)
        assert 3 not in {doc.doc_id for doc in engine.corpus}


class TestShardedCorpusRouting:
    def test_route_of_known_and_new_ids(self):
        sharded = ShardedCorpus(Corpus(list(DOCUMENTS)), 2)
        for document in DOCUMENTS:
            assert sharded.route(document.doc_id) == \
                sharded.shard_of(document.doc_id)
        assert sharded.route(99) == hash_shard(99, 2)

    def test_round_robin_cannot_route_new_ids(self):
        sharded = ShardedCorpus(Corpus(list(DOCUMENTS)), 2,
                                policy=ROUND_ROBIN)
        assert sharded.route(0) == sharded.shard_of(0)
        with pytest.raises(ValueError):
            sharded.route(99)

    def test_record_and_forget(self):
        sharded = ShardedCorpus(Corpus(list(DOCUMENTS)), 2)
        shard = sharded.route(3)
        sharded.record(3, shard)
        assert sharded.shard_of(3) == shard
        with pytest.raises(ValueError):
            sharded.record(3, shard)
        with pytest.raises(ValueError):
            sharded.record(4, 9)
        assert sharded.forget(3) == shard
        with pytest.raises(KeyError):
            sharded.shard_of(3)
