"""Unit tests for ElemRank (XRANK's element-level PageRank)."""

import pytest

from repro import RELATIONSHIPS, XOntoRankConfig, XOntoRankEngine
from repro.cda.sample import build_figure1_document
from repro.core.elemrank import (ElemRankComputer, ElemRankParameters,
                                 extract_link_edges)
from repro.xmldoc.dewey import assign_dewey_ids
from repro.xmldoc.model import Corpus
from repro.xmldoc.parser import parse_document


class TestParameters:
    def test_damping_sum_bound(self):
        with pytest.raises(ValueError):
            ElemRankParameters(d1=0.5, d2=0.4, d3=0.2)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ElemRankParameters(d1=-0.1)

    def test_iterations_positive(self):
        with pytest.raises(ValueError):
            ElemRankParameters(max_iterations=0)


class TestLinkExtraction:
    def test_figure1_reference_link(self):
        """Figure 1 links the Asthma observation's originalText to the
        Theophylline narrative via <reference value="m1"/> / ID="m1"."""
        document = build_figure1_document()
        ids = assign_dewey_ids(document)
        edges = extract_link_edges(document, ids)
        assert len(edges) == 1
        source, target = edges[0]
        by_dewey = {dewey: node for node, dewey in ids.items()}
        assert by_dewey[source].tag == "originalText"
        assert by_dewey[target].attributes.get("ID") == "m1"

    def test_dangling_reference_ignored(self):
        document = parse_document(
            '<a><reference value="nope"/><b ID="other"/></a>')
        ids = assign_dewey_ids(document)
        assert extract_link_edges(document, ids) == []


class TestRanks:
    def test_ranks_positive_and_finite(self):
        corpus = Corpus([build_figure1_document()])
        computer = ElemRankComputer(corpus)
        ranks = computer.ranks()
        assert ranks
        assert all(value > 0.0 for value in ranks.values())

    def test_total_mass_bounded(self):
        """With d1+d2+d3 < 1 the iteration is a contraction; total mass
        stays bounded (XRANK's formulation is not a stochastic matrix:
        leaves leak forward-containment mass, so totals sit below 1)."""
        corpus = Corpus([build_figure1_document()])
        computer = ElemRankComputer(corpus)
        total = sum(computer.ranks().values())
        assert 0.1 < total < 3.0

    def test_linked_element_gains_rank(self):
        linked = parse_document(
            '<doc><x><reference value="t"/></x><y ID="t"/><z/></doc>')
        plain = parse_document('<doc><x/><y/><z/></doc>')
        linked_ranks = ElemRankComputer(Corpus([linked])).ranks()
        ids = assign_dewey_ids(linked)
        target = next(dewey for node, dewey in ids.items()
                      if node.attributes.get("ID") == "t")
        sibling = next(dewey for node, dewey in ids.items()
                       if node.tag == "z")
        assert linked_ranks[target] > linked_ranks[sibling]

    def test_symmetric_siblings_tie(self):
        document = parse_document("<doc><a/><b/></doc>")
        ranks = ElemRankComputer(Corpus([document])).ranks()
        ids = assign_dewey_ids(document)
        a = next(d for n, d in ids.items() if n.tag == "a")
        b = next(d for n, d in ids.items() if n.tag == "b")
        assert ranks[a] == pytest.approx(ranks[b])

    def test_normalized_weights_max_one(self):
        corpus = Corpus([build_figure1_document()])
        weights = ElemRankComputer(corpus).normalized_weights()
        assert max(weights.values()) == pytest.approx(1.0)
        assert all(0.0 < value <= 1.0 for value in weights.values())


class TestEngineIntegration:
    def test_elemrank_engine_stays_consistent(self, core_ontology):
        """DIL results must equal naive results with ElemRank on (the
        weighting happens inside the shared NodeScorer)."""
        corpus = Corpus([build_figure1_document()])
        engine = XOntoRankEngine(
            corpus, core_ontology, strategy=RELATIONSHIPS,
            config=XOntoRankConfig(use_elemrank=True))
        for query in ("asthma medications",
                      '"bronchial structure" theophylline'):
            dil = engine.search(query, k=10)
            naive = engine.search_naive(query, k=10)
            assert [(r.dewey, pytest.approx(r.score)) for r in dil] == \
                [(r.dewey, r.score) for r in naive]

    def test_elemrank_changes_scores(self, core_ontology):
        corpus = Corpus([build_figure1_document()])
        plain = XOntoRankEngine(corpus, core_ontology,
                                strategy=RELATIONSHIPS)
        weighted = XOntoRankEngine(
            corpus, core_ontology, strategy=RELATIONSHIPS,
            config=XOntoRankConfig(use_elemrank=True))
        base = plain.search("asthma medications", k=1)
        modulated = weighted.search("asthma medications", k=1)
        assert base and modulated
        assert modulated[0].score < base[0].score  # weights are <= 1
