"""Unit tests for the three OntoScore strategies, pinned to the paper's
worked examples (Sections IV-A/B/C)."""

import pytest

from repro.core.ontoscore import (GraphOntoScore,
                                  MaterializedRelationshipsOntoScore,
                                  RelationshipsOntoScore,
                                  concept_seed_scorer,
                                  relationships_seed_scorer)
from repro.core.ontoscore.taxonomy import TaxonomyOntoScore
from repro.ir.tokenizer import Keyword
from repro.ontology import DLView, snomed
from repro.ontology.model import Ontology
from repro.ontology.snomed import (ASTHMA, BRONCHIAL_STRUCTURE,
                                   BRONCHITIS, DISORDER_OF_BRONCHUS,
                                   build_core_ontology)


@pytest.fixture(scope="module")
def core():
    return build_core_ontology()


@pytest.fixture(scope="module")
def concept_seeds(core):
    return concept_seed_scorer(core)


@pytest.fixture(scope="module")
def relationship_seeds(core):
    return relationships_seed_scorer(core)


class TestGraphStrategy:
    def test_intro_example(self, core, concept_seeds):
        """Asthma gets decay^1 of Bronchial Structure's seed via the
        finding-site-of edge (the paper's motivating query)."""
        strategy = GraphOntoScore(core, concept_seeds, decay=0.5,
                                  threshold=0.1)
        scores = strategy.compute(Keyword.from_text("bronchial structure"))
        assert scores[BRONCHIAL_STRUCTURE] == pytest.approx(1.0)
        assert scores[ASTHMA] == pytest.approx(0.5)

    def test_decay_per_hop(self, core, concept_seeds):
        strategy = GraphOntoScore(core, concept_seeds, decay=0.5,
                                  threshold=0.01)
        scores = strategy.compute(Keyword.from_text("bronchial structure"))
        # Asthma Attack: direct finding-site edge -> one hop.
        assert scores[snomed.ASTHMA_ATTACK] == pytest.approx(0.5)

    def test_threshold_bounds_radius(self, core, concept_seeds):
        tight = GraphOntoScore(core, concept_seeds, decay=0.5,
                               threshold=0.4)
        loose = GraphOntoScore(core, concept_seeds, decay=0.5,
                               threshold=0.05)
        keyword = Keyword.from_text("bronchial structure")
        assert len(tight.compute(keyword)) < len(loose.compute(keyword))

    def test_edge_types_ignored(self, concept_seeds):
        """Undirected and unlabeled: any edge type conducts equally."""
        ontology = Ontology("s")
        ontology.new_concept("a", "alpha")
        ontology.new_concept("b", "beta")
        ontology.add_relationship("a", "weird-link", "b")
        seeds = concept_seed_scorer(ontology)
        strategy = GraphOntoScore(ontology, seeds, decay=0.5,
                                  threshold=0.1)
        scores = strategy.compute(Keyword.from_text("alpha"))
        assert scores["b"] == pytest.approx(0.5)

    def test_invalid_decay(self, core, concept_seeds):
        with pytest.raises(ValueError):
            GraphOntoScore(core, concept_seeds, decay=0.0)


class TestTaxonomyStrategy:
    def test_downward_flow_is_undamped(self, core, concept_seeds):
        """Paper example (i): OS for 'bronchus' flows from Disorder of
        Bronchus to its subclass Asthma at full strength."""
        strategy = TaxonomyOntoScore(core, concept_seeds, threshold=0.01)
        scores = strategy.compute(Keyword.from_text("bronchus"))
        # 'bronchus' is a synonym of Bronchial Structure and a word of
        # DOB's name; Asthma is a subclass of DOB.
        assert scores[ASTHMA] == pytest.approx(scores[DISORDER_OF_BRONCHUS])
        assert scores[BRONCHITIS] == pytest.approx(
            scores[DISORDER_OF_BRONCHUS])

    def test_upward_flow_split_by_subclass_count(self, core,
                                                 concept_seeds):
        """Paper example (ii): flowing up to a superclass divides by its
        number of direct subclasses (1/26 for Asthma's parent role in
        the paper; here measured on our DAG)."""
        strategy = TaxonomyOntoScore(core, concept_seeds, threshold=0.001)
        scores = strategy.compute(Keyword.from_text("asthma"))
        assert scores[ASTHMA] == pytest.approx(1.0)
        expected = 1.0 / core.subclass_count(DISORDER_OF_BRONCHUS)
        assert scores[DISORDER_OF_BRONCHUS] == pytest.approx(expected)

    def test_no_flow_through_attribute_edges(self, core, concept_seeds):
        strategy = TaxonomyOntoScore(core, concept_seeds, threshold=0.01)
        scores = strategy.compute(Keyword.from_text("bronchial structure"))
        # Bronchial Structure connects to Asthma only via finding-site;
        # the taxonomy strategy must not cross it.
        assert ASTHMA not in scores

    def test_descendants_of_matches_all_reached(self, core, concept_seeds):
        strategy = TaxonomyOntoScore(core, concept_seeds, threshold=0.01)
        scores = strategy.compute(Keyword.from_text("asthma"))
        for subclass in core.children(ASTHMA):
            assert scores[subclass] == pytest.approx(1.0)


class TestRelationshipsStrategy:
    def test_intro_example_via_dotted_link(self, core, relationship_seeds):
        """Bronchial Structure -> dotted (t) -> ∃fso.BS -> down (1) ->
        Asthma: OS = t."""
        strategy = RelationshipsOntoScore(core, relationship_seeds,
                                          t=0.5, threshold=0.1)
        scores = strategy.compute(Keyword.from_text("bronchial structure"))
        assert scores[ASTHMA] == pytest.approx(0.5)

    def test_forward_role_flow_divided_by_in_degree(self, core,
                                                    relationship_seeds):
        """A -> ∃r.B (1/N) -> B (t): Section VI-C's denominator."""
        strategy = RelationshipsOntoScore(core, relationship_seeds,
                                          t=0.5, threshold=0.0001)
        scores = strategy.compute(Keyword.from_text("pericardial effusion"))
        in_degree = core.role_in_degree(snomed.PERICARDIUM_STRUCTURE,
                                        snomed.FINDING_SITE_OF)
        expected = 0.5 / in_degree
        assert scores[snomed.PERICARDIUM_STRUCTURE] == \
            pytest.approx(expected)

    def test_extends_taxonomy(self, core, concept_seeds,
                              relationship_seeds):
        """Every taxonomy-reachable concept is relationships-reachable
        with at least the same score."""
        taxonomy = TaxonomyOntoScore(core, concept_seeds, threshold=0.1)
        relationships = RelationshipsOntoScore(core, relationship_seeds,
                                               t=0.5, threshold=0.1)
        keyword = Keyword.from_text("asthma")
        tax_scores = taxonomy.compute(keyword)
        rel_scores = relationships.compute(keyword)
        for concept, score in tax_scores.items():
            assert rel_scores.get(concept, 0.0) >= score - 1e-12

    def test_no_existential_states_in_output(self, core,
                                             relationship_seeds):
        strategy = RelationshipsOntoScore(core, relationship_seeds,
                                          t=0.5, threshold=0.01)
        scores = strategy.compute(Keyword.from_text("asthma"))
        assert not any(str(code).startswith("exists:") for code in scores)

    def test_implicit_equals_materialized(self, core, relationship_seeds):
        """Section VI-C's claim: the implicit algorithm assigns scores
        'equal to the ones computed by building the ontological
        graph'."""
        implicit = RelationshipsOntoScore(core, relationship_seeds,
                                          t=0.5, threshold=0.05)
        materialized = MaterializedRelationshipsOntoScore(
            DLView(core), relationship_seeds, t=0.5, threshold=0.05)
        for text in ("asthma", "bronchial structure", "pericardium",
                     "amiodarone", "pain", "theophylline"):
            keyword = Keyword.from_text(text)
            left = implicit.compute(keyword)
            right = materialized.compute(keyword)
            assert left.keys() == right.keys()
            for concept in left:
                assert left[concept] == pytest.approx(right[concept])

    def test_pain_control_trap_path(self, core, relationship_seeds):
        """Acetaminophen reaches aspirin through the shared pain-control
        restriction -- the mapping the paper's expert rejected."""
        strategy = RelationshipsOntoScore(core, relationship_seeds,
                                          t=0.5, threshold=0.05)
        scores = strategy.compute(Keyword.from_text("acetaminophen"))
        assert snomed.ASPIRIN in scores

    def test_invalid_t(self, core, relationship_seeds):
        with pytest.raises(ValueError):
            RelationshipsOntoScore(core, relationship_seeds, t=0.0)
