"""Unit tests for the result-explanation API."""

import pytest

from repro import RELATIONSHIPS, XRANK
from repro.core.ontoscore.base import best_first_expansion_traced
from repro.core.query.explain import ONTOLOGICAL, TEXTUAL
from repro.ir.tokenizer import Keyword


class TestTracedExpansion:
    def test_predecessors_reach_seeds(self):
        edges = {"a": [("b", 0.5)], "b": [("c", 0.9)]}
        scores, predecessors = best_first_expansion_traced(
            {"a": 1.0}, lambda node: edges.get(node, []), 0.1)
        assert predecessors["a"] is None
        assert predecessors["b"] == "a"
        assert predecessors["c"] == "b"
        assert scores["c"] == pytest.approx(0.45)

    def test_predecessor_follows_best_path(self):
        edges = {"a": [("c", 0.2), ("b", 0.9)], "b": [("c", 0.9)]}
        _, predecessors = best_first_expansion_traced(
            {"a": 1.0}, lambda node: edges.get(node, []), 0.1)
        assert predecessors["c"] == "b"  # 0.81 beats 0.2

    def test_seed_overridden_by_flow_tracks_flow(self):
        edges = {"a": [("b", 0.9)]}
        _, predecessors = best_first_expansion_traced(
            {"a": 1.0, "b": 0.2}, lambda node: edges.get(node, []), 0.1)
        assert predecessors["b"] == "a"


class TestFlowPath:
    def test_path_through_restriction(self, figure1_engines):
        from repro.ontology.snomed import ASTHMA
        engine = figure1_engines[RELATIONSHIPS]
        keyword = Keyword.from_text("bronchial structure")
        path = engine.ontoscore.flow_path(ASTHMA, keyword)
        assert path is not None
        assert path[-1] == ASTHMA
        assert any(str(node).startswith("exists:") for node in path)

    def test_unreachable_concept_has_no_path(self, figure1_engines):
        from repro.ontology.snomed import BODY_HEIGHT
        engine = figure1_engines[RELATIONSHIPS]
        keyword = Keyword.from_text("bronchial structure")
        assert engine.ontoscore.flow_path(BODY_HEIGHT, keyword) is None


class TestExplainResult:
    def test_textual_evidence(self, figure1_engines):
        engine = figure1_engines[XRANK]
        results = engine.search("asthma medications", k=1)
        explanation = engine.explain(results[0], "asthma medications")
        assert len(explanation.evidence) == 2
        assert all(item.source == TEXTUAL
                   for item in explanation.evidence)
        for item in explanation.evidence:
            assert results[0].dewey.contains(item.contributor)
            assert item.propagated_score == pytest.approx(
                item.node_score * 0.5 ** item.containment_distance)

    def test_ontological_evidence_carries_path(self, figure1_engines):
        engine = figure1_engines[RELATIONSHIPS]
        query = '"bronchial structure" theophylline'
        results = engine.search(query, k=1)
        explanation = engine.explain(results[0], query)
        bronchial = next(item for item in explanation.evidence
                         if "bronchial" in item.keyword)
        assert bronchial.source == ONTOLOGICAL
        assert bronchial.concept_label
        assert bronchial.ontology_path
        assert bronchial.ontology_path[-1].node == bronchial.concept_code

    def test_propagated_scores_match_result(self, figure1_engines):
        engine = figure1_engines[RELATIONSHIPS]
        query = "asthma medications"
        results = engine.search(query, k=1)
        explanation = engine.explain(results[0], query)
        for item, score in zip(explanation.evidence,
                               results[0].keyword_scores):
            assert item.propagated_score == pytest.approx(score)

    def test_describe_renders(self, figure1_engines):
        engine = figure1_engines[RELATIONSHIPS]
        query = '"bronchial structure" theophylline'
        results = engine.search(query, k=1)
        text = engine.explain(results[0], query).describe()
        assert "result" in text
        assert "via" in text
