"""Warm-engine thread safety: N threads x M queries against one engine
must be byte-identical to serial execution, with DIL-cache counters
that still add up. This is the property the serving layer's worker
pool stands on."""

from concurrent.futures import ThreadPoolExecutor

import pytest

QUERIES = ["chest pain", "aspirin", "myocardial infarction",
           "patient medication", "blood pressure", "heart"]
THREADS = 8
ROUNDS = 4  # each query executed THREADS * ROUNDS times concurrently


@pytest.fixture(scope="module")
def engine(engines):
    return engines["relationships"]


def test_concurrent_queries_match_serial(engine):
    serial = {query: engine.search(query, k=10) for query in QUERIES}

    jobs = [query for _ in range(THREADS * ROUNDS)
            for query in QUERIES]
    with ThreadPoolExecutor(max_workers=THREADS) as pool:
        outcomes = list(pool.map(
            lambda query: (query, engine.search(query, k=10)), jobs))

    for query, results in outcomes:
        expected = serial[query]
        assert len(results) == len(expected)
        for mine, reference in zip(results, expected):
            # Byte-identical: same element, same score, same order.
            assert mine.dewey == reference.dewey
            assert mine.score == reference.score

    stats = engine.cache_stats()
    assert stats.hits + stats.misses == stats.lookups
    # Everything was warm after the serial pass: the concurrent rounds
    # were pure cache hits (no rebuild raced another).
    assert stats.hits >= len(jobs)


def test_concurrent_outcomes_are_exact(engine):
    # search_outcome's partial flag is per-call state; concurrent use
    # must never leak one request's flag into another.
    with ThreadPoolExecutor(max_workers=THREADS) as pool:
        outcomes = list(pool.map(
            lambda query: engine.search_outcome(query, 10),
            QUERIES * THREADS))
    assert all(outcome.exact for outcome in outcomes)
