"""Unit tests for the DIL stack-merge query algorithm (Section V-A)."""

import pytest

from repro.core.index.dil import DeweyInvertedList, Posting
from repro.core.query.dil_algorithm import DILQueryProcessor
from repro.ir.tokenizer import Keyword
from repro.xmldoc.dewey import DeweyID


def dil(text, *entries):
    return DeweyInvertedList(Keyword.from_text(text), [
        Posting(DeweyID.parse(encoded), score)
        for encoded, score in entries])


@pytest.fixture
def processor():
    return DILQueryProcessor(decay=0.5)


class TestSemantics:
    def test_most_specific_common_subtree(self, processor):
        results = processor.execute([
            dil("a", ("0.1.0", 1.0)),
            dil("b", ("0.1.1", 1.0)),
        ])
        assert len(results) == 1
        assert results[0].dewey.encode() == "0.1"
        assert results[0].score == pytest.approx(1.0)  # 0.5 + 0.5

    def test_single_node_covering_both(self, processor):
        results = processor.execute([
            dil("a", ("0.2", 1.0)),
            dil("b", ("0.2", 0.5)),
        ])
        assert [r.dewey.encode() for r in results] == ["0.2"]
        assert results[0].score == pytest.approx(1.5)

    def test_eq1_excludes_ancestors_of_results(self, processor):
        # Both 0.1.0 (deep pair) and 0 (root) cover both keywords; only
        # the deepest covering node is a result.
        results = processor.execute([
            dil("a", ("0.1.0.0", 1.0), ("0.2", 1.0)),
            dil("b", ("0.1.0.1", 1.0), ("0.2", 1.0)),
        ])
        assert sorted(r.dewey.encode() for r in results) == ["0.1.0", "0.2"]

    def test_missing_keyword_gives_no_results(self, processor):
        results = processor.execute([
            dil("a", ("0.1", 1.0)),
            DeweyInvertedList(Keyword.from_text("b"), []),
        ])
        assert results == []

    def test_results_across_documents(self, processor):
        results = processor.execute([
            dil("a", ("0.1", 1.0), ("3.2", 0.5)),
            dil("b", ("0.2", 1.0), ("3.2.1", 0.5)),
        ])
        encodings = sorted(r.dewey.encode() for r in results)
        assert encodings == ["0", "3.2"]

    def test_no_cross_document_results(self, processor):
        results = processor.execute([
            dil("a", ("0.1", 1.0)),
            dil("b", ("1.1", 1.0)),
        ])
        assert results == []

    def test_requires_at_least_one_list(self, processor):
        with pytest.raises(ValueError):
            processor.execute([])

    def test_single_keyword_query(self, processor):
        results = processor.execute([dil("a", ("0.1.2", 1.0),
                                         ("0.1.2.0", 0.5))])
        # 0.1.2.0 covers the keyword, so its ancestor 0.1.2 is excluded.
        assert [r.dewey.encode() for r in results] == ["0.1.2.0"]


class TestScoring:
    def test_decay_applied_per_level(self, processor):
        results = processor.execute([
            dil("a", ("0.0.0.0", 1.0)),
            dil("b", ("0.1", 1.0)),
        ])
        assert len(results) == 1
        result = results[0]
        assert result.dewey.encode() == "0"
        assert result.keyword_scores[0] == pytest.approx(0.125)
        assert result.keyword_scores[1] == pytest.approx(0.5)
        assert result.score == pytest.approx(0.625)

    def test_max_over_multiple_occurrences(self, processor):
        results = processor.execute([
            dil("a", ("0.1.0", 0.4), ("0.1.1", 1.0)),
            dil("b", ("0.1.2", 1.0)),
        ])
        assert results[0].keyword_scores[0] == pytest.approx(0.5)

    def test_ranking_and_topk(self, processor):
        results = processor.execute([
            dil("a", ("0.1.0", 1.0), ("1.1.0", 0.4)),
            dil("b", ("0.1.1", 1.0), ("1.1.1", 0.4)),
        ], k=1)
        assert len(results) == 1
        assert results[0].dewey.doc_id == 0

    def test_statistics_recorded(self, processor):
        processor.execute([
            dil("a", ("0.1.0", 1.0)),
            dil("b", ("0.1.1", 1.0)),
        ])
        stats = processor.last_statistics
        assert stats.postings_read == 2
        assert stats.results_found == 1
        assert stats.frames_pushed >= 3

    def test_decay_validation(self):
        with pytest.raises(ValueError):
            DILQueryProcessor(decay=1.5)
