"""Unit tests for the DIL stack-merge query algorithm (Section V-A)."""

import pytest

from repro.core.index.dil import DeweyInvertedList, Posting
from repro.core.query.dil_algorithm import DILQueryProcessor
from repro.core.stats import (TOPK_DOCS_SKIPPED, TOPK_HEAP_EVICTIONS,
                              StatsRegistry)
from repro.ir.tokenizer import Keyword
from repro.xmldoc.dewey import DeweyID


def dil(text, *entries):
    return DeweyInvertedList(Keyword.from_text(text), [
        Posting(DeweyID.parse(encoded), score)
        for encoded, score in entries])


@pytest.fixture
def processor():
    return DILQueryProcessor(decay=0.5)


class TestSemantics:
    def test_most_specific_common_subtree(self, processor):
        results = processor.execute([
            dil("a", ("0.1.0", 1.0)),
            dil("b", ("0.1.1", 1.0)),
        ])
        assert len(results) == 1
        assert results[0].dewey.encode() == "0.1"
        assert results[0].score == pytest.approx(1.0)  # 0.5 + 0.5

    def test_single_node_covering_both(self, processor):
        results = processor.execute([
            dil("a", ("0.2", 1.0)),
            dil("b", ("0.2", 0.5)),
        ])
        assert [r.dewey.encode() for r in results] == ["0.2"]
        assert results[0].score == pytest.approx(1.5)

    def test_eq1_excludes_ancestors_of_results(self, processor):
        # Both 0.1.0 (deep pair) and 0 (root) cover both keywords; only
        # the deepest covering node is a result.
        results = processor.execute([
            dil("a", ("0.1.0.0", 1.0), ("0.2", 1.0)),
            dil("b", ("0.1.0.1", 1.0), ("0.2", 1.0)),
        ])
        assert sorted(r.dewey.encode() for r in results) == ["0.1.0", "0.2"]

    def test_missing_keyword_gives_no_results(self, processor):
        results = processor.execute([
            dil("a", ("0.1", 1.0)),
            DeweyInvertedList(Keyword.from_text("b"), []),
        ])
        assert results == []

    def test_results_across_documents(self, processor):
        results = processor.execute([
            dil("a", ("0.1", 1.0), ("3.2", 0.5)),
            dil("b", ("0.2", 1.0), ("3.2.1", 0.5)),
        ])
        encodings = sorted(r.dewey.encode() for r in results)
        assert encodings == ["0", "3.2"]

    def test_no_cross_document_results(self, processor):
        results = processor.execute([
            dil("a", ("0.1", 1.0)),
            dil("b", ("1.1", 1.0)),
        ])
        assert results == []

    def test_requires_at_least_one_list(self, processor):
        with pytest.raises(ValueError):
            processor.execute([])

    def test_single_keyword_query(self, processor):
        results = processor.execute([dil("a", ("0.1.2", 1.0),
                                         ("0.1.2.0", 0.5))])
        # 0.1.2.0 covers the keyword, so its ancestor 0.1.2 is excluded.
        assert [r.dewey.encode() for r in results] == ["0.1.2.0"]


class TestScoring:
    def test_decay_applied_per_level(self, processor):
        results = processor.execute([
            dil("a", ("0.0.0.0", 1.0)),
            dil("b", ("0.1", 1.0)),
        ])
        assert len(results) == 1
        result = results[0]
        assert result.dewey.encode() == "0"
        assert result.keyword_scores[0] == pytest.approx(0.125)
        assert result.keyword_scores[1] == pytest.approx(0.5)
        assert result.score == pytest.approx(0.625)

    def test_max_over_multiple_occurrences(self, processor):
        results = processor.execute([
            dil("a", ("0.1.0", 0.4), ("0.1.1", 1.0)),
            dil("b", ("0.1.2", 1.0)),
        ])
        assert results[0].keyword_scores[0] == pytest.approx(0.5)

    def test_ranking_and_topk(self, processor):
        results = processor.execute([
            dil("a", ("0.1.0", 1.0), ("1.1.0", 0.4)),
            dil("b", ("0.1.1", 1.0), ("1.1.1", 0.4)),
        ], k=1)
        assert len(results) == 1
        assert results[0].dewey.doc_id == 0

    def test_statistics_recorded(self, processor):
        processor.execute([
            dil("a", ("0.1.0", 1.0)),
            dil("b", ("0.1.1", 1.0)),
        ])
        stats = processor.last_statistics
        assert stats.postings_read == 2
        assert stats.results_found == 1
        assert stats.frames_pushed >= 3

    def test_decay_validation(self):
        with pytest.raises(ValueError):
            DILQueryProcessor(decay=1.5)


class TestBoundedTopK:
    """Document-skip pruning: which documents the bounded mode reads,
    and what the statistics say about the ones it doesn't."""

    #: Four documents: a strong hit (doc 0, bound 2.0), a weak hit
    #: (doc 1, bound 0.4), one missing keyword b entirely (doc 2), and
    #: a stronger hit than doc 0 (doc 3, single covering node).
    DILS = (
        ("a", ("0.1", 1.0), ("1.1", 0.2), ("2.0", 1.0), ("3.0", 1.0)),
        ("b", ("0.2", 1.0), ("1.2", 0.2), ("3.0", 1.0)),
    )

    def dils(self):
        return [dil(text, *entries) for text, *entries in self.DILS]

    def test_skips_weak_and_uncovered_documents(self, processor):
        results = processor.collect_topk(self.dils(), 1)
        assert [r.dewey.encode() for r in results] == ["3.0"]
        assert results[0].score == pytest.approx(2.0)
        stats = processor.last_statistics
        # doc 2 never covers keyword b; doc 1's bound (0.4) cannot beat
        # the heap minimum (1.0) once doc 0 filled the size-1 heap.
        assert stats.docs_skipped == 2
        # doc 3's result displaced doc 0's.
        assert stats.heap_evictions == 1
        # Only docs 0 and 3 were merged: 2 postings each.
        assert stats.postings_read == 4

    def test_statistics_match_full_mode_when_nothing_prunes(
            self, processor):
        lists = self.dils()
        full = processor.collect(lists)
        full_reads = processor.last_statistics.postings_read
        bounded = processor.collect_topk(lists, 10)
        stats = processor.last_statistics
        # k=10 never fills the heap, so only the uncovered doc is
        # skipped -- and its postings are the whole saving.
        assert stats.docs_skipped == 1
        assert stats.heap_evictions == 0
        assert stats.postings_read == full_reads - 1
        from repro.core.query.results import rank_results
        assert bounded == rank_results(full, 10)

    def test_equal_bound_skip_respects_dewey_tie_break(self, processor):
        """A later document whose bound exactly equals the heap minimum
        is skipped: any tying result would lose the (-score, dewey)
        tie-break against the earlier entry."""
        lists = [
            dil("a", ("0.1", 1.0), ("1.0", 0.5)),
            dil("b", ("0.2", 1.0), ("1.0", 0.5)),
        ]
        results = processor.collect_topk(lists, 1)
        assert [r.dewey.encode() for r in results] == ["0"]
        assert processor.last_statistics.docs_skipped == 1
        from repro.core.query.results import rank_results
        assert results == rank_results(processor.collect(lists), 1)

    def test_registry_counters_accumulate(self):
        registry = StatsRegistry()
        processor = DILQueryProcessor(decay=0.5, stats=registry)
        processor.collect_topk(self.dils(), 1)
        assert registry.value(TOPK_DOCS_SKIPPED) == 2
        assert registry.value(TOPK_HEAP_EVICTIONS) == 1
        processor.collect_topk(self.dils(), 1)
        assert registry.value(TOPK_DOCS_SKIPPED) == 4

    def test_execute_routes_k_to_bounded_mode(self, processor):
        results = processor.execute(self.dils(), k=2)
        assert [r.dewey.encode() for r in results] == ["3.0", "0"]
        assert processor.last_statistics.docs_skipped > 0

    def test_missing_keyword_short_circuits(self, processor):
        results = processor.collect_topk([
            dil("a", ("0.1", 1.0)),
            DeweyInvertedList(Keyword.from_text("b"), []),
        ], 5)
        assert results == []
        assert processor.last_statistics.postings_read == 0
