"""The measured cost model behind ``mode="auto"`` parallel builds.

Regression target: the old fixed 512-word threshold could fork a
process pool for a vocabulary that was large but *cheap*, paying more
in fork overhead than the whole serial build cost. The chooser is now
a pure projection from a timed probe chunk; these tests pin its
decision table, and the integration case asserts the chooser never
picks the process pool on a tiny corpus where it cannot win.
"""

from __future__ import annotations

import pytest

from repro.core.config import XRANK, XOntoRankConfig
from repro.core.index.parallel import (PROCESS_MODE_THRESHOLD,
                                       ParallelIndexBuilder,
                                       choose_mode)
from repro.core.query.engine import XOntoRankEngine
from repro.xmldoc.model import Corpus, XMLDocument, XMLNode


class TestChooseMode:
    def test_thread_without_fork_support(self):
        assert choose_mode(10.0, 10, 10_000, workers=8,
                           fork_available=False) == "thread"

    def test_thread_with_a_single_worker(self):
        assert choose_mode(10.0, 10, 10_000, workers=1,
                           fork_available=True) == "thread"

    def test_thread_with_nothing_remaining(self):
        assert choose_mode(10.0, 10, 0, workers=8,
                           fork_available=True) == "thread"

    def test_threshold_fallback_without_probe_signal(self):
        # A zero-cost (or zero-width) probe says nothing; the legacy
        # size cutoff decides.
        assert choose_mode(0.0, 10, PROCESS_MODE_THRESHOLD, workers=4,
                           fork_available=True) == "process"
        assert choose_mode(0.0, 10, PROCESS_MODE_THRESHOLD - 1,
                           workers=4, fork_available=True) == "thread"
        assert choose_mode(1.0, 0, PROCESS_MODE_THRESHOLD, workers=4,
                           fork_available=True) == "process"

    def test_cheap_vocabulary_stays_serial_even_when_large(self):
        # 10k words at 1µs each: the whole remainder costs 10ms, far
        # below any fork. The old threshold would have forked here.
        assert choose_mode(0.00001, 10, 10_000, workers=4,
                           fork_available=True) == "thread"

    def test_expensive_vocabulary_forks_even_when_small(self):
        # 100 words at 50ms each: 5s serial vs 0.6s fork + 1.25s
        # pooled. The old threshold would have stayed serial here.
        assert choose_mode(0.5, 10, 100, workers=4,
                           fork_available=True) == "process"

    def test_breakeven_boundary_is_exact(self):
        # With probe cost c per word, S = c * remaining; process wins
        # iff overhead * workers < S * (1 - 1/workers).
        workers, overhead = 4, 0.15
        cost_per_word = 0.01
        breakeven = (overhead * workers) / (cost_per_word *
                                            (1 - 1 / workers))
        below = int(breakeven) - 1
        above = int(breakeven) + 2
        assert choose_mode(cost_per_word, 1, below, workers,
                           fork_available=True,
                           fork_overhead=overhead) == "thread"
        assert choose_mode(cost_per_word, 1, above, workers,
                           fork_available=True,
                           fork_overhead=overhead) == "process"


class TestAutoModeOnTinyCorpus:
    def test_auto_never_forks_for_a_tiny_corpus(self):
        """The regression the probe exists to prevent: a tiny corpus
        makes every keyword near-free, so the chooser must never pick
        the process pool -- whose fork overhead alone would exceed the
        whole serial build -- regardless of vocabulary size vs the old
        threshold."""
        documents = [
            XMLDocument(doc_id=i, root=XMLNode(
                "record", {}, text=f"word{i} shared tiny corpus"))
            for i in range(6)
        ]
        engine = XOntoRankEngine(Corpus(documents), None,
                                 strategy=XRANK,
                                 config=XOntoRankConfig())
        vocabulary = sorted({"shared", "tiny", "corpus"}
                            | {f"word{i}" for i in range(6)})
        serial_index = engine.builder.build(vocabulary, XRANK)

        parallel = ParallelIndexBuilder(engine.builder, workers=4,
                                        mode="auto", chunk_size=2)
        index = parallel.build(vocabulary, XRANK)

        registry = parallel.registry
        assert registry.value("parallel_build.mode.process") == 0
        assert registry.value("parallel_build.builds") == 1
        # The probe ran (auto + several chunks) and its shard was
        # reused, not rebuilt: the result still equals the serial one.
        assert set(index.lists) == set(serial_index.lists)
        for key in serial_index.lists:
            assert [posting.encoded() for posting
                    in index.lists[key]] == \
                [posting.encoded() for posting
                 in serial_index.lists[key]]

    def test_explicit_modes_still_respected(self):
        documents = [XMLDocument(doc_id=0, root=XMLNode(
            "record", {}, text="alpha beta"))]
        engine = XOntoRankEngine(Corpus(documents), None,
                                 strategy=XRANK,
                                 config=XOntoRankConfig())
        thread = ParallelIndexBuilder(engine.builder, workers=2,
                                      mode="thread", chunk_size=1)
        thread.build(["alpha", "beta"], XRANK)
        assert thread.registry.value("parallel_build.mode.thread") == 1
        with pytest.raises(ValueError):
            ParallelIndexBuilder(engine.builder, mode="rocket")
