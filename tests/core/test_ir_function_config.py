"""Unit tests: the IR function is pluggable end to end (Eq. 5 is
parametric in the IR score; the paper uses BM25, TF-IDF is the classic
alternative)."""

import pytest

from repro import RELATIONSHIPS, XOntoRankConfig, XOntoRankEngine
from repro.cda.sample import build_figure1_document
from repro.core.ontoscore.base import make_scorer
from repro.ir.bm25 import BM25Scorer
from repro.ir.inverted_index import PositionalIndex
from repro.ir.tfidf import TfIdfScorer
from repro.xmldoc.model import Corpus


class TestMakeScorer:
    def test_names_resolve(self):
        index = PositionalIndex()
        index.add("u", "asthma")
        assert isinstance(make_scorer(index, "bm25"), BM25Scorer)
        assert isinstance(make_scorer(index, "tfidf"), TfIdfScorer)

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_scorer(PositionalIndex(), "lucene")

    def test_config_validates(self):
        with pytest.raises(ValueError):
            XOntoRankConfig(ir_function="lucene")


class TestEngineWithTfIdf:
    @pytest.fixture(scope="class")
    def engines(self, core_ontology):
        corpus = Corpus([build_figure1_document()])
        bm25 = XOntoRankEngine(corpus, core_ontology,
                               strategy=RELATIONSHIPS)
        tfidf = XOntoRankEngine(
            corpus, core_ontology, strategy=RELATIONSHIPS,
            config=XOntoRankConfig(ir_function="tfidf"))
        return bm25, tfidf

    def test_tfidf_engine_answers_paper_queries(self, engines):
        _, tfidf = engines
        assert tfidf.search("asthma medications", k=3)
        assert tfidf.search('"bronchial structure" theophylline', k=3)

    def test_dil_equals_naive_under_tfidf(self, engines):
        _, tfidf = engines
        for query in ("asthma medications", "theophylline temperature"):
            dil = tfidf.search(query, k=10)
            naive = tfidf.search_naive(query, k=10)
            assert [(r.dewey, pytest.approx(r.score)) for r in dil] == \
                [(r.dewey, r.score) for r in naive]

    def test_scorers_differ_but_agree_on_matches(self, engines):
        bm25, tfidf = engines
        from repro.ir.tokenizer import Keyword
        keyword = Keyword.from_text("medications")
        left = bm25.element_index.irs(keyword)
        right = tfidf.element_index.irs(keyword)
        # Same match set (both driven by term presence)...
        assert left.keys() == right.keys()
        # ... normalized into the same scale.
        assert max(left.values()) == pytest.approx(1.0)
        assert max(right.values()) == pytest.approx(1.0)
