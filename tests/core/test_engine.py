"""Unit tests for the XOntoRank engine facade, pinned to the paper's
running examples on the Figure 1 document."""

import pytest

from repro import (GRAPH, RELATIONSHIPS, TAXONOMY, XRANK, XOntoRankConfig,
                   XOntoRankEngine)
from repro.cda.sample import build_figure1_document
from repro.ontology.snomed import build_core_ontology
from repro.storage.memory_store import MemoryStore
from repro.storage.sqlite_store import SQLiteStore
from repro.xmldoc.model import Corpus


class TestConstruction:
    def test_ontology_strategies_need_ontology(self, figure1_corpus):
        with pytest.raises(ValueError):
            XOntoRankEngine(figure1_corpus, None, strategy=RELATIONSHIPS)

    def test_xrank_without_ontology(self, figure1_corpus):
        engine = XOntoRankEngine(figure1_corpus, None, strategy=XRANK)
        assert engine.search("asthma medications", k=5)

    def test_unknown_strategy(self, figure1_corpus, core_ontology):
        with pytest.raises(ValueError):
            XOntoRankEngine(figure1_corpus, core_ontology,
                            strategy="mystery")


class TestPaperExamples:
    def test_figure4_answer(self, figure1_engines):
        """Query [asthma, medications] returns the Figure 4 Observation."""
        engine = figure1_engines[RELATIONSHIPS]
        results = engine.search("asthma medications", k=3)
        assert results
        fragment = engine.fragment(results[0])
        assert fragment.tag == "Observation"
        text = engine.fragment_text(results[0])
        assert 'displayName="Asthma"' in text
        assert 'displayName="Medications"' in text

    def test_intro_query_needs_ontology(self, figure1_engines):
        """'Bronchial Structure Theophylline': XRANK and Taxonomy find
        nothing; Graph and Relationships connect Asthma to Bronchial
        Structure (Section I)."""
        query = '"bronchial structure" theophylline'
        assert figure1_engines[XRANK].search(query) == []
        assert figure1_engines[TAXONOMY].search(query) == []
        assert figure1_engines[GRAPH].search(query)
        assert figure1_engines[RELATIONSHIPS].search(query)

    def test_intro_result_is_ontology_bridged(self, figure1_engines):
        """The fragment answering the intro query carries no literal
        'bronchial structure' text -- the keyword is satisfied purely
        through the ontology, via a disorder whose finding site is the
        bronchial structure (Eq. 1 picks the most specific such node)."""
        engine = figure1_engines[RELATIONSHIPS]
        results = engine.search('"bronchial structure" theophylline', k=10)
        assert results
        top = engine.fragment(results[0])
        assert "bronchial structure" not in top.subtree_text().lower()
        references = [node.reference.concept_code for node in top.iter()
                      if node.reference is not None]
        from repro.ontology.snomed import (BRONCHIAL_STRUCTURE,
                                           FINDING_SITE_OF)
        ontology = engine.ontology
        assert any(
            any(edge.destination == BRONCHIAL_STRUCTURE
                for edge in ontology.outgoing(code, FINDING_SITE_OF))
            for code in references if code in ontology)

    def test_dil_equals_naive_on_paper_queries(self, figure1_engines):
        for engine in figure1_engines.values():
            for query in ("asthma medications",
                          '"bronchial structure" theophylline',
                          "theophylline temperature"):
                dil = engine.search(query, k=10)
                naive = engine.search_naive(query, k=10)
                assert [(r.dewey, pytest.approx(r.score)) for r in dil] == \
                    [(r.dewey, r.score) for r in naive]


class TestIndexLifecycle:
    def test_build_index_prewarms_cache(self, core_ontology):
        corpus = Corpus([build_figure1_document()])
        engine = XOntoRankEngine(corpus, core_ontology,
                                 strategy=RELATIONSHIPS)
        index = engine.build_index()
        assert len(index) > 50
        assert "asthma" in index.keywords()

    def test_persist_and_reload(self, core_ontology):
        corpus = Corpus([build_figure1_document()])
        config = XOntoRankConfig()
        store = MemoryStore()
        engine = XOntoRankEngine(corpus, core_ontology,
                                 strategy=RELATIONSHIPS, config=config)
        engine.build_index(vocabulary={"asthma", "medications"},
                           store=store)
        assert store.get_metadata("strategy") == RELATIONSHIPS
        assert list(store.document_ids()) == [0]

        fresh = XOntoRankEngine(corpus, core_ontology,
                                strategy=RELATIONSHIPS, config=config)
        loaded = fresh.load_index(store)
        assert loaded == 2
        results = fresh.search("asthma medications", k=3)
        original = engine.search("asthma medications", k=3)
        assert [(r.dewey, r.score) for r in results] == \
            [(r.dewey, r.score) for r in original]

    def test_sqlite_store_end_to_end(self, core_ontology, tmp_path):
        corpus = Corpus([build_figure1_document()])
        path = str(tmp_path / "xonto.db")
        engine = XOntoRankEngine(corpus, core_ontology,
                                 strategy=RELATIONSHIPS)
        with SQLiteStore(path) as store:
            engine.build_index(vocabulary={"asthma", "medications"},
                               store=store)
        with SQLiteStore(path) as store:
            fresh = XOntoRankEngine(corpus, core_ontology,
                                    strategy=RELATIONSHIPS)
            assert fresh.load_index(store) == 2
            assert fresh.search("asthma medications", k=1)


class TestDILCacheKeying:
    def test_phrase_and_term_with_same_text_do_not_collide(
            self, figure1_corpus, core_ontology):
        """Regression: the cache used to key on ``keyword.text`` alone,
        so a quoted single-word phrase ('"asthma"') and the bare term
        (asthma) shared one entry -- whichever was built first answered
        for both."""
        from repro.ir.tokenizer import Keyword
        engine = XOntoRankEngine(figure1_corpus, core_ontology,
                                 strategy=RELATIONSHIPS)
        term = Keyword(tokens=("asthma",), is_phrase=False)
        phrase = Keyword(tokens=("asthma",), is_phrase=True)
        term_dil = engine.dil_for(term)
        phrase_dil = engine.dil_for(phrase)
        assert ("asthma", False) in engine.dil_cache
        assert ("asthma", True) in engine.dil_cache
        assert engine.dil_cache.get(("asthma", False)) is term_dil
        assert engine.dil_cache.get(("asthma", True)) is phrase_dil
        assert term_dil is not phrase_dil
        # Both entries stay live: looking one up never serves the other.
        assert engine.dil_for(term) is term_dil
        assert engine.dil_for(phrase) is phrase_dil

    def test_persisted_index_keys_distinguish_phrases(self):
        """The persisted key is quoted for phrases, so a store can hold
        both lists side by side and reload them with the right flag."""
        from repro.core.index.dil import index_key, keyword_from_key
        from repro.ir.tokenizer import Keyword
        term = Keyword(tokens=("asthma",), is_phrase=False)
        phrase = Keyword(tokens=("asthma",), is_phrase=True)
        assert index_key(term) == "asthma"
        assert index_key(phrase) == '"asthma"'
        assert keyword_from_key(index_key(phrase)) == phrase
        assert keyword_from_key(index_key(term)) == term
        # Legacy unquoted multi-word keys load as phrases (the old
        # on-disk format never stored a phrase marker).
        legacy = keyword_from_key("cardiac arrest")
        assert legacy.is_phrase and legacy.tokens == ("cardiac", "arrest")


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            XOntoRankConfig(decay=0.0)
        with pytest.raises(ValueError):
            XOntoRankConfig(threshold=1.0)
        with pytest.raises(ValueError):
            XOntoRankConfig(t=-0.5)
        with pytest.raises(ValueError):
            XOntoRankConfig(top_k=0)
        with pytest.raises(ValueError):
            XOntoRankConfig(dil_cache_capacity=-1)

    def test_threshold_changes_reach(self, figure1_corpus, core_ontology):
        tight = XOntoRankEngine(
            figure1_corpus, core_ontology, strategy=GRAPH,
            config=XOntoRankConfig(threshold=0.6))
        assert tight.search('"bronchial structure" theophylline') == []

    def test_default_top_k_applies(self, figure1_corpus, core_ontology):
        engine = XOntoRankEngine(
            figure1_corpus, core_ontology, strategy=RELATIONSHIPS,
            config=XOntoRankConfig(top_k=1))
        results = engine.search("medications temperature")
        assert len(results) <= 1
