"""Unit tests for the bounded LRU DIL cache and its counters."""

import threading
import time

import pytest

from repro.core.cache import DILCache
from repro.core.config import RELATIONSHIPS, XOntoRankConfig
from repro.core.query.engine import XOntoRankEngine
from repro.core.stats import StatsRegistry
from repro.ir.tokenizer import Keyword


class TestLRUSemantics:
    def test_eviction_order_is_least_recently_used(self):
        cache = DILCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)  # evicts a (oldest)
        assert "a" not in cache
        assert cache.get("b") == 2
        assert cache.get("c") == 3

    def test_hit_refreshes_recency(self):
        cache = DILCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # a is now most recent
        cache.put("c", 3)  # evicts b, not a
        assert "a" in cache
        assert "b" not in cache

    def test_put_refreshes_recency(self):
        cache = DILCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # replace refreshes, no eviction
        cache.put("c", 3)  # evicts b
        assert cache.get("a") == 10
        assert "b" not in cache
        assert cache.stats().evictions == 1

    def test_capacity_never_exceeded(self):
        cache = DILCache(capacity=3)
        for value in range(50):
            cache.put(f"key-{value}", value)
            assert len(cache) <= 3
        assert cache.stats().evictions == 47

    def test_keys_in_recency_order(self):
        cache = DILCache(capacity=3)
        for key in ("a", "b", "c"):
            cache.put(key, key)
        cache.get("a")
        assert list(cache.keys()) == ["b", "c", "a"]


class TestCapacityModes:
    def test_capacity_zero_disables_caching(self):
        cache = DILCache(capacity=0)
        cache.put("a", 1)
        assert len(cache) == 0
        assert cache.get("a") is None
        stats = cache.stats()
        assert stats.misses == 1
        assert stats.evictions == 0

    def test_capacity_zero_get_or_build_always_builds(self):
        cache = DILCache(capacity=0)
        calls = []
        for _ in range(3):
            value = cache.get_or_build("a", lambda: calls.append(1) or 7)
        assert value == 7
        assert len(calls) == 3
        assert cache.stats().misses == 3

    def test_capacity_none_is_unbounded(self):
        cache = DILCache(capacity=None)
        for value in range(500):
            cache.put(value, value)
        assert len(cache) == 500
        assert cache.stats().evictions == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            DILCache(capacity=-1)


class TestCounters:
    def test_hit_miss_accounting(self):
        cache = DILCache(capacity=4)
        assert cache.get("a") is None  # miss
        cache.put("a", 1)
        assert cache.get("a") == 1  # hit
        assert cache.get("a") == 1  # hit
        assert cache.get("b") is None  # miss
        stats = cache.stats()
        assert (stats.hits, stats.misses) == (2, 2)
        assert stats.lookups == 4
        assert stats.hit_rate == pytest.approx(0.5)

    def test_get_or_build_counts_miss_then_hits(self):
        cache = DILCache(capacity=4)
        assert cache.get_or_build("a", lambda: 1) == 1
        assert cache.get_or_build("a", lambda: 2) == 1
        stats = cache.stats()
        assert (stats.hits, stats.misses) == (1, 1)

    def test_counters_survive_clear(self):
        cache = DILCache(capacity=2)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats().hits == 1

    def test_shared_registry_and_render(self):
        registry = StatsRegistry()
        cache = DILCache(capacity=2, stats=registry, namespace="dc")
        cache.get("a")
        cache.put("a", 1)
        cache.get("a")
        assert registry.value("dc.hits") == 1
        assert registry.value("dc.misses") == 1
        assert "dc.hits=1" in registry.render()
        assert "hits=1" in cache.stats().render()

    def test_idle_hit_rate_is_zero(self):
        assert DILCache(capacity=1).stats().hit_rate == 0.0


class TestThreadSafety:
    def test_concurrent_mixed_operations(self):
        cache = DILCache(capacity=16)
        errors = []

        def worker(worker_id: int) -> None:
            try:
                for step in range(300):
                    key = (worker_id * 7 + step) % 40
                    if step % 3 == 0:
                        cache.put(key, key)
                    else:
                        value = cache.get(key)
                        assert value is None or value == key
            except Exception as error:  # pragma: no cover
                errors.append(error)

        threads = [threading.Thread(target=worker, args=(n,))
                   for n in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(cache) <= 16
        stats = cache.stats()
        assert stats.hits + stats.misses == 8 * 200  # 2 of 3 steps read

    def test_concurrent_get_or_build_shares_one_value(self):
        cache = DILCache(capacity=8)
        barrier = threading.Barrier(6)
        seen = []

        def worker() -> None:
            barrier.wait()
            seen.append(cache.get_or_build("key", lambda: object()))

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # Racing builders may construct several objects, but every
        # caller after the race resolves through the cache, which holds
        # exactly one.
        assert cache.get("key") in seen
        assert len(cache) == 1

    def test_losing_builder_never_replaces_the_winner(self):
        """Regression: the cold-build race must be first-insert-wins.

        The broken interleaving was: thread T1 misses, builds, re-checks
        under the lock (still absent), releases the lock, and only then
        inserts via ``put`` -- so a thread T2 that completed its own
        build-and-insert inside that window got its value *replaced*,
        leaving T1 and T2 holding distinct objects for the same key.

        The test forces exactly that interleaving by hooking the
        instance's ``put``: T1's first call parks there (after its
        under-lock re-check, before its insert) while the main thread
        completes a full ``get_or_build``. On the fixed code the hook
        never fires -- ``get_or_build`` inserts under one lock
        acquisition -- and the loop below falls through when T1's
        thread exits.
        """
        cache = DILCache(capacity=8)
        original_put = cache.put
        t1_at_put = threading.Event()
        t2_done = threading.Event()

        def parking_put(key, value):
            if not t1_at_put.is_set():
                t1_at_put.set()
                assert t2_done.wait(timeout=5.0)
            original_put(key, value)

        cache.put = parking_put
        t1_results = []
        thread = threading.Thread(
            target=lambda: t1_results.append(
                cache.get_or_build("key", object)))
        thread.start()
        while not t1_at_put.is_set() and thread.is_alive():
            time.sleep(0.001)
        t2_value = cache.get_or_build("key", object)
        t2_done.set()
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        cache.put = original_put

        cached = cache.get("key")
        assert cached is t2_value
        assert cached is t1_results[0]


class TestEngineIntegration:
    @pytest.fixture()
    def bounded_engine(self, figure1_corpus, core_ontology):
        config = XOntoRankConfig(dil_cache_capacity=3)
        return XOntoRankEngine(figure1_corpus, core_ontology,
                               strategy=RELATIONSHIPS, config=config)

    def test_vocabulary_sweep_stays_bounded(self, bounded_engine):
        vocabulary = sorted(
            bounded_engine.build_index().keywords())
        assert len(bounded_engine.dil_cache) <= 3
        for word in vocabulary[:20]:
            bounded_engine.search(word, k=3)
            assert len(bounded_engine.dil_cache) <= 3

    def test_repeat_query_hits_cache(self, figure1_corpus, core_ontology):
        engine = XOntoRankEngine(figure1_corpus, core_ontology,
                                 strategy=RELATIONSHIPS)
        engine.search("asthma medications", k=3)
        misses_after_first = engine.cache_stats().misses
        engine.search("asthma medications", k=3)
        stats = engine.cache_stats()
        assert stats.misses == misses_after_first
        assert stats.hits >= 2

    def test_concurrent_dil_for_is_safe_and_deterministic(
            self, figure1_corpus, core_ontology):
        config = XOntoRankConfig(dil_cache_capacity=4)
        engine = XOntoRankEngine(figure1_corpus, core_ontology,
                                 strategy=RELATIONSHIPS, config=config)
        words = ("asthma", "medications", "temperature", "theophylline",
                 "disorder", "observation")
        reference = {
            word: engine.builder.build_keyword(
                Keyword.from_text(word))[0].encoded()
            for word in words}
        errors = []

        def worker(offset: int) -> None:
            try:
                for step in range(12):
                    word = words[(offset + step) % len(words)]
                    dil = engine.dil_for(Keyword.from_text(word))
                    assert dil.encoded() == reference[word]
            except Exception as error:  # pragma: no cover
                errors.append(error)

        threads = [threading.Thread(target=worker, args=(n,))
                   for n in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(engine.dil_cache) <= 4
