"""Deadline semantics: the clock-injected budget and its ambient
propagation, plus the deadline-bounded query pipeline."""

import threading

import pytest

from repro.core.deadline import (Deadline, DeadlineExceeded,
                                 current_deadline, deadline_scope)
from repro.core.query.engine import XOntoRankEngine
from repro.storage.errors import StorageError


class SteppingClock:
    """A clock advancing by ``step`` on every reading -- each check of
    a deadline consumes one tick, making expiry points exact."""

    def __init__(self, step: float = 1.0) -> None:
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        value = self.now
        self.now += self.step
        return value


class TestDeadline:
    def test_remaining_and_expiry(self):
        clock = SteppingClock(step=0.0)
        deadline = Deadline.after(5.0, clock=clock)
        assert deadline.remaining() == pytest.approx(5.0)
        assert not deadline.expired
        clock.now = 5.0
        assert deadline.expired
        assert deadline.remaining() == pytest.approx(0.0)
        clock.now = 7.0
        assert deadline.remaining() == pytest.approx(-2.0)

    def test_check_raises_once_expired(self):
        clock = SteppingClock(step=0.0)
        deadline = Deadline.after(1.0, clock=clock)
        deadline.check("merge")  # not expired: no-op
        clock.now = 2.0
        with pytest.raises(DeadlineExceeded, match="during merge"):
            deadline.check("merge")

    def test_negative_timeout_rejected(self):
        with pytest.raises(ValueError):
            Deadline.after(-0.1)

    def test_not_a_storage_error(self):
        # 504 must never feed the degraded/circuit-breaker path.
        assert not issubclass(DeadlineExceeded, StorageError)


class TestAmbientDeadline:
    def test_scope_publishes_and_restores(self):
        assert current_deadline() is None
        outer = Deadline.after(10.0)
        inner = Deadline.after(1.0)
        with deadline_scope(outer):
            assert current_deadline() is outer
            with deadline_scope(inner):
                assert current_deadline() is inner
            assert current_deadline() is outer
        assert current_deadline() is None

    def test_none_clears_for_background_work(self):
        with deadline_scope(Deadline.after(10.0)):
            with deadline_scope(None):
                assert current_deadline() is None
            assert current_deadline() is not None

    def test_threads_are_isolated(self):
        # A worker pool must never observe another request's budget.
        seen: list[object] = []
        with deadline_scope(Deadline.after(10.0)):
            thread = threading.Thread(
                target=lambda: seen.append(current_deadline()))
            thread.start()
            thread.join()
        assert seen == [None]


class TestDeadlineBoundedSearch:
    @pytest.fixture(scope="class")
    def engine(self, cda_corpus):
        return XOntoRankEngine(cda_corpus, None, strategy="xrank")

    def test_no_deadline_is_exact(self, engine):
        outcome = engine.search_outcome("patient", k=5)
        assert not outcome.partial
        assert outcome.exact
        assert outcome.results == engine.search("patient", k=5)

    def test_expired_deadline_raises_before_work(self, engine):
        clock = SteppingClock(step=0.0)
        clock.now = 100.0
        dead = Deadline(expires_at=0.0, clock=clock)
        with pytest.raises(DeadlineExceeded):
            engine.search_outcome("patient", k=5, deadline=dead)

    def test_mid_merge_expiry_returns_partial_prefix(self, engine):
        # The stepping clock pins the expiry between per-document
        # merges: checks land at dil_fetch (t=0), merge entry (t=1),
        # then one per candidate document (t=2, 3, ...). Expiring at
        # t=3.5 lets exactly two documents merge.
        clock = SteppingClock(step=1.0)
        deadline = Deadline(expires_at=3.5, clock=clock)
        exact = engine.search("patient", k=5)
        outcome = engine.search_outcome("patient", k=5,
                                        deadline=deadline)
        assert outcome.partial
        assert not outcome.exact
        assert len(outcome.results) <= len(exact)
        # What was served is a subset of real results with real scores
        # (granularity is a whole document: served entries are exact).
        exact_by_dewey = {result.dewey.encode(): result.score
                          for result in exact}
        full = {result.dewey.encode(): result.score
                for result in engine.search("patient", k=1000)}
        for result in outcome.results:
            assert full[result.dewey.encode()] == result.score
        assert exact_by_dewey  # sanity: the query matches something
