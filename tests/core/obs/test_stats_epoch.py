"""StatsRegistry snapshot/reset semantics under concurrency: epoched
scrapes must be internally consistent while writer threads are live,
and drained epochs must partition the update stream exactly."""

import threading

from repro.core.stats import StatsRegistry

WRITES = 2000


def test_epoch_starts_at_zero_and_advances_on_reset():
    registry = StatsRegistry()
    assert registry.epoch == 0
    registry.reset()
    assert registry.epoch == 1
    registry.drain()
    assert registry.epoch == 2


def test_snapshot_all_is_internally_consistent():
    snapshot = StatsRegistry()
    snapshot.increment("a")
    snapshot.observe("t", 0.5)
    scrape = snapshot.snapshot_all()
    assert scrape.epoch == 0
    assert scrape.counters == {"a": 1}
    assert scrape.timers["t"].count == 1


def test_snapshot_never_tears_a_batched_update():
    """A writer bumping two counters atomically (increment_many) must
    never be observed half-applied by a concurrent scrape."""
    registry = StatsRegistry()
    stop = threading.Event()

    def writer() -> None:
        while not stop.is_set():
            registry.increment_many({"left": 1, "right": 1})

    thread = threading.Thread(target=writer)
    thread.start()
    try:
        for _ in range(500):
            scrape = registry.snapshot_all()
            assert scrape.counters.get("left", 0) \
                == scrape.counters.get("right", 0)
    finally:
        stop.set()
        thread.join()


def test_drain_partitions_the_stream_exactly():
    """Sum of drained epochs + the live snapshot == every write that
    ever happened: no loss, no double count, even mid-write."""
    registry = StatsRegistry()
    written = 0
    lock = threading.Lock()
    stop = threading.Event()

    def writer() -> None:
        nonlocal written
        while not stop.is_set():
            registry.increment("events")
            with lock:
                written += 1

    threads = [threading.Thread(target=writer) for _ in range(4)]
    for thread in threads:
        thread.start()
    drained = []
    try:
        while True:
            with lock:
                if written >= WRITES:
                    break
            drained.append(registry.drain())
    finally:
        stop.set()
        for thread in threads:
            thread.join()
    final = registry.snapshot_all()
    total = sum(scrape.counters.get("events", 0)
                for scrape in drained)
    total += final.counters.get("events", 0)
    assert total == written
    # Epochs are strictly increasing and the live one follows last.
    epochs = [scrape.epoch for scrape in drained] + [final.epoch]
    assert epochs == sorted(set(epochs))


def test_drain_clears_timers_too():
    registry = StatsRegistry()
    registry.observe("t", 1.0)
    scrape = registry.drain()
    assert scrape.timers["t"].count == 1
    assert registry.snapshot_all().timers == {}
