"""Timer/histogram instruments and their StatsRegistry integration."""

import math

import pytest

from repro.core.obs.instruments import (EMPTY_TIMER, LogBucketHistogram,
                                        ManualClock, TimerStats)
from repro.core.stats import StatsRegistry


class TestManualClock:
    def test_starts_at_zero_and_advances(self):
        clock = ManualClock()
        assert clock() == 0.0
        clock.advance(1.5)
        assert clock() == 1.5
        clock.advance(0.25)
        assert clock() == 1.75

    def test_custom_start(self):
        assert ManualClock(start=100.0)() == 100.0

    def test_rejects_backwards_time(self):
        with pytest.raises(ValueError):
            ManualClock().advance(-1.0)


class TestHistogramEdgeCases:
    def test_empty_stream_is_all_zero(self):
        histogram = LogBucketHistogram()
        assert histogram.percentile(0.50) == 0.0
        assert histogram.snapshot() == EMPTY_TIMER
        assert histogram.snapshot().mean == 0.0

    def test_single_sample_is_exact_at_every_quantile(self):
        histogram = LogBucketHistogram()
        histogram.record(0.037)
        stats = histogram.snapshot()
        assert stats.count == 1
        assert stats.total == pytest.approx(0.037)
        assert stats.minimum == stats.maximum == 0.037
        # Clamping into [min, max] makes one sample its own p50/p95/p99.
        assert stats.p50 == stats.p95 == stats.p99 == 0.037

    def test_all_equal_stream_is_exact(self):
        histogram = LogBucketHistogram()
        for _ in range(1000):
            histogram.record(0.125)
        stats = histogram.snapshot()
        assert stats.count == 1000
        assert stats.p50 == stats.p95 == stats.p99 == 0.125
        assert stats.mean == pytest.approx(0.125)

    def test_zero_samples_land_in_the_zero_bucket(self):
        histogram = LogBucketHistogram()
        for _ in range(99):
            histogram.record(0.0)
        histogram.record(1.0)
        assert histogram.percentile(0.50) == 0.0
        assert histogram.percentile(0.99) == 0.0
        assert histogram.percentile(1.0) == 1.0

    def test_negative_samples_clamp_to_zero(self):
        histogram = LogBucketHistogram()
        histogram.record(-5.0)
        stats = histogram.snapshot()
        assert stats.minimum == 0.0
        assert stats.total == 0.0
        assert stats.p99 == 0.0

    def test_quantile_domain(self):
        histogram = LogBucketHistogram()
        histogram.record(1.0)
        with pytest.raises(ValueError):
            histogram.percentile(0.0)
        with pytest.raises(ValueError):
            histogram.percentile(1.1)


class TestHistogramAccuracy:
    def test_percentile_within_one_bucket_of_truth(self):
        # A geometric spread of samples; bucket width is 2**(1/8), so
        # the reported percentile must be within ~9% of the exact
        # order statistic.
        samples = [1.001 ** i for i in range(1, 1001)]
        histogram = LogBucketHistogram()
        for sample in samples:
            histogram.record(sample)
        for quantile in (0.50, 0.95, 0.99):
            exact = samples[max(0, math.ceil(quantile * 1000) - 1)]
            reported = histogram.percentile(quantile)
            assert reported == pytest.approx(exact, rel=0.095)

    def test_percentiles_are_monotone_and_within_range(self):
        histogram = LogBucketHistogram()
        for value in (0.001, 0.01, 0.1, 1.0, 10.0):
            histogram.record(value)
        p50 = histogram.percentile(0.50)
        p95 = histogram.percentile(0.95)
        p99 = histogram.percentile(0.99)
        assert 0.001 <= p50 <= p95 <= p99 <= 10.0

    def test_deterministic_across_instances(self):
        values = [0.003 * (i % 17 + 1) for i in range(500)]
        first, second = LogBucketHistogram(), LogBucketHistogram()
        for value in values:
            first.record(value)
        for value in values:
            second.record(value)
        assert first.snapshot() == second.snapshot()


class TestTimerStats:
    def test_mean(self):
        stats = TimerStats(count=4, total=2.0, minimum=0.1, maximum=1.0,
                           p50=0.5, p95=0.9, p99=1.0)
        assert stats.mean == 0.5

    def test_render_is_milliseconds_by_default(self):
        stats = TimerStats(count=2, total=0.250, minimum=0.1,
                           maximum=0.15, p50=0.1, p95=0.15, p99=0.15)
        text = stats.render()
        assert "count=2" in text
        assert "total=250.000ms" in text
        assert "mean=125.000ms" in text


class TestRegistryTimers:
    def test_observe_and_timer(self):
        registry = StatsRegistry()
        registry.observe("query.parse", 0.5)
        registry.observe("query.parse", 0.5)
        stats = registry.timer("query.parse")
        assert stats.count == 2
        assert stats.total == pytest.approx(1.0)
        assert stats.p50 == 0.5

    def test_unknown_timer_is_empty(self):
        assert StatsRegistry().timer("nope") == EMPTY_TIMER

    def test_time_context_uses_injected_clock(self):
        clock = ManualClock()
        registry = StatsRegistry(clock=clock)
        with registry.time("stage"):
            clock.advance(2.5)
        stats = registry.timer("stage")
        assert stats.count == 1
        assert stats.total == 2.5
        assert stats.p99 == 2.5

    def test_timers_snapshot_and_reset(self):
        clock = ManualClock()
        registry = StatsRegistry(clock=clock)
        registry.observe("a", 1.0)
        registry.observe("b", 2.0)
        assert set(registry.timers()) == {"a", "b"}
        registry.reset()
        assert registry.timers() == {}
        assert registry.timer("a") == EMPTY_TIMER

    def test_render_timers(self):
        registry = StatsRegistry()
        registry.observe("query.parse", 0.001)
        registry.observe("storage.read", 0.002)
        text = registry.render_timers()
        assert "query.parse" in text
        assert "storage.read" in text
        only_storage = registry.render_timers(prefix="storage.")
        assert "storage.read" in only_storage
        assert "query.parse" not in only_storage


class TestIncrementMany:
    def test_batch_matches_individual_increments(self):
        batched, individual = StatsRegistry(), StatsRegistry()
        amounts = {"a": 3, "b": 1, "c": 7}
        batched.increment_many(amounts)
        for name, amount in amounts.items():
            individual.increment(name, amount)
        assert batched.snapshot() == individual.snapshot()

    def test_accumulates_over_calls(self):
        registry = StatsRegistry()
        registry.increment_many({"a": 1})
        registry.increment_many({"a": 2, "b": 5})
        assert registry.value("a") == 3
        assert registry.value("b") == 5

    def test_empty_batch_is_a_no_op(self):
        registry = StatsRegistry()
        registry.increment_many({})
        assert registry.snapshot() == {}
