"""Exporters: profile table, JSON-lines metrics, Chrome trace."""

import json
import os

from repro.core.obs.export import (chrome_trace, metrics_lines, phase_of,
                                   render_profile, write_chrome_trace,
                                   write_metrics_jsonl)
from repro.core.obs.instruments import ManualClock
from repro.core.obs.tracer import Tracer
from repro.core.stats import StatsRegistry


def traced_registry():
    """A registry + tracer with a deterministic, representative load."""
    clock = ManualClock()
    registry = StatsRegistry(clock=clock)
    tracer = Tracer(clock=clock, registry=registry)
    with tracer.span("query.search", strategy="relationships"):
        with tracer.span("query.parse"):
            clock.advance(0.001)
        with tracer.span("query.dil_fetch", keyword="asthma") as span:
            with tracer.span("storage.sqlite.read", keyword="asthma"):
                clock.advance(0.004)
            span.annotate(postings=12)
        with tracer.span("query.dil_merge", keywords=1):
            clock.advance(0.002)
    registry.increment("dil_cache.hits", 2)
    return registry, tracer


class TestPhaseOf:
    def test_exact_and_prefix_matches(self):
        assert phase_of("query.parse") == "parse"
        assert phase_of("ontoscore.expand") == "ontoscore"
        assert phase_of("query.dil_merge") == "dil_merge"
        assert phase_of("storage.sqlite.read") == "storage"
        assert phase_of("dil_cache.build") == "dil_fetch"
        assert phase_of("index.merge_shard") == "index_build"
        assert phase_of("parallel_build.shard_build") == "index_build"
        assert phase_of("query.search") == "query_total"

    def test_unknown_names_roll_up_nowhere(self):
        assert phase_of("unrelated.timer") is None
        # Exact-match prefixes must not swallow extensions.
        assert phase_of("query.parsefoo") is None


class TestRenderProfile:
    def test_canonical_phases_always_print(self):
        profile = render_profile(StatsRegistry())
        for phase in ("parse", "ontoscore", "dil_merge", "storage"):
            assert phase in profile
        # Optional phases stay hidden at zero.
        assert "index_build" not in profile
        assert "query_total" not in profile

    def test_populated_profile(self):
        registry, tracer = traced_registry()
        profile = render_profile(registry, tracer)
        assert profile.startswith("PROFILE")
        assert "query_total" in profile
        assert "instruments:" in profile
        assert "query.dil_merge:" in profile
        assert "counters:" in profile
        assert "dil_cache.hits=2" in profile
        assert "spans: 5 buffered (0 dropped)" in profile

    def test_disabled_tracer_hides_span_line(self):
        registry, _ = traced_registry()
        assert "spans:" not in render_profile(registry)


class TestMetricsLines:
    def test_every_line_parses_and_is_sorted(self):
        registry, _ = traced_registry()
        lines = metrics_lines(registry)
        rows = [json.loads(line) for line in lines]
        counters = [row for row in rows if row["type"] == "counter"]
        timers = [row for row in rows if row["type"] == "timer"]
        assert [row["name"] for row in counters] == \
            sorted(row["name"] for row in counters)
        assert [row["name"] for row in timers] == \
            sorted(row["name"] for row in timers)
        assert counters[0] == {"type": "counter",
                               "name": "dil_cache.hits", "value": 2}

    def test_timer_row_shape(self):
        registry, _ = traced_registry()
        rows = [json.loads(line) for line in metrics_lines(registry)]
        merge = next(row for row in rows
                     if row["name"] == "query.dil_merge")
        assert set(merge) == {"type", "name", "count", "total_s",
                              "mean_s", "min_s", "max_s", "p50_s",
                              "p95_s", "p99_s"}
        assert merge["count"] == 1
        assert abs(merge["total_s"] - 0.002) < 1e-12

    def test_write_metrics_jsonl(self, tmp_path):
        registry, _ = traced_registry()
        path = tmp_path / "metrics.jsonl"
        written = write_metrics_jsonl(registry, str(path))
        lines = path.read_text().splitlines()
        assert written == len(lines) > 0
        for line in lines:
            json.loads(line)


class TestChromeTrace:
    def test_structure(self):
        _, tracer = traced_registry()
        trace = chrome_trace(tracer)
        assert trace["displayTimeUnit"] == "ms"
        events = trace["traceEvents"]
        assert len(events) == 5
        for event in events:
            assert event["ph"] == "X"
            assert event["cat"] == "repro"
            assert event["pid"] == os.getpid()
            assert event["ts"] >= 0.0
            assert event["dur"] >= 0.0

    def test_timestamps_relative_to_earliest_span(self):
        _, tracer = traced_registry()
        events = chrome_trace(tracer)["traceEvents"]
        assert min(event["ts"] for event in events) == 0.0
        search = next(e for e in events if e["name"] == "query.search")
        # ManualClock advanced 7ms total inside the search span.
        assert abs(search["dur"] - 7000.0) < 1e-6

    def test_args_are_json_safe(self):
        clock = ManualClock()
        tracer = Tracer(clock=clock)
        with tracer.span("s", keyword="asthma", count=3,
                         weird=object()) as span:
            clock.advance(0.001)
            span.annotate(flag=True, nothing=None)
        (event,) = chrome_trace(tracer)["traceEvents"]
        json.dumps(event)  # the whole event must serialize
        assert event["args"]["keyword"] == "asthma"
        assert event["args"]["count"] == 3
        assert event["args"]["flag"] is True
        assert isinstance(event["args"]["weird"], str)

    def test_write_chrome_trace(self, tmp_path):
        _, tracer = traced_registry()
        path = tmp_path / "trace.json"
        written = write_chrome_trace(tracer, str(path))
        loaded = json.loads(path.read_text())
        assert written == len(loaded["traceEvents"]) == 5

    def test_empty_tracer_yields_empty_trace(self):
        trace = chrome_trace(Tracer())
        assert trace["traceEvents"] == []
