"""Span tracer: nesting, attributes, bounding, no-op mode, threads."""

import threading

import pytest

from repro.core.obs.instruments import ManualClock
from repro.core.obs.tracer import (DEFAULT_SPAN_CAPACITY, NULL_TRACER,
                                   NullTracer, Tracer)
from repro.core.stats import StatsRegistry


def manual_tracer(**kwargs):
    clock = ManualClock()
    return clock, Tracer(clock=clock, **kwargs)


class TestSpanBasics:
    def test_span_records_duration_from_injected_clock(self):
        clock, tracer = manual_tracer()
        with tracer.span("query.parse"):
            clock.advance(0.125)
        (span,) = tracer.finished()
        assert span.name == "query.parse"
        assert span.duration == 0.125
        assert span.thread_id == threading.get_ident()

    def test_creation_attributes_and_annotate(self):
        clock, tracer = manual_tracer()
        with tracer.span("query.dil_merge", keywords=3) as span:
            clock.advance(0.01)
            span.annotate(results=7, postings_read=42)
        (finished,) = tracer.finished()
        assert finished.attributes == {"keywords": 3, "results": 7,
                                       "postings_read": 42}

    def test_annotate_overwrites(self):
        _, tracer = manual_tracer()
        with tracer.span("s", state="open") as span:
            span.annotate(state="closing")
        assert tracer.finished()[0].attributes == {"state": "closing"}

    def test_span_closes_on_exception(self):
        clock, tracer = manual_tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("failing"):
                clock.advance(1.0)
                raise RuntimeError("boom")
        (span,) = tracer.finished()
        assert span.duration == 1.0
        assert tracer.active_depth() == 0


class TestNesting:
    def test_depth_tracks_the_stack(self):
        clock, tracer = manual_tracer()
        with tracer.span("query.search"):
            assert tracer.active_depth() == 1
            with tracer.span("query.parse"):
                assert tracer.active_depth() == 2
            with tracer.span("query.dil_merge"):
                clock.advance(0.5)
        assert tracer.active_depth() == 0
        by_name = {span.name: span for span in tracer.finished()}
        assert by_name["query.search"].depth == 0
        assert by_name["query.parse"].depth == 1
        assert by_name["query.dil_merge"].depth == 1

    def test_children_finish_before_parents(self):
        _, tracer = manual_tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        names = [span.name for span in tracer.finished()]
        assert names == ["inner", "outer"]


class TestBoundedBuffer:
    def test_oldest_spans_drop_first(self):
        clock, tracer = manual_tracer(capacity=3)
        for i in range(5):
            with tracer.span(f"span{i}"):
                clock.advance(0.001)
        assert [span.name for span in tracer.finished()] == \
            ["span2", "span3", "span4"]
        assert tracer.dropped == 2

    def test_clear_resets_buffer_and_drop_counter(self):
        clock, tracer = manual_tracer(capacity=1)
        for _ in range(3):
            with tracer.span("s"):
                clock.advance(0.001)
        tracer.clear()
        assert tracer.finished() == []
        assert tracer.dropped == 0

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)

    def test_default_capacity(self):
        assert DEFAULT_SPAN_CAPACITY == 4096


class TestRegistryIntegration:
    def test_finished_spans_feed_same_named_timer(self):
        clock = ManualClock()
        registry = StatsRegistry(clock=clock)
        tracer = Tracer(clock=clock, registry=registry)
        for _ in range(3):
            with tracer.span("query.dil_merge"):
                clock.advance(0.25)
        stats = registry.timer("query.dil_merge")
        assert stats.count == 3
        assert stats.total == pytest.approx(0.75)

    def test_observe_delegates_to_registry(self):
        registry = StatsRegistry()
        tracer = Tracer(registry=registry)
        tracer.observe("parallel_build.shard_build", 1.5)
        assert registry.timer("parallel_build.shard_build").count == 1

    def test_registry_attachable_after_construction(self):
        clock, tracer = manual_tracer()
        registry = StatsRegistry()
        tracer.registry = registry
        with tracer.span("late"):
            clock.advance(0.1)
        assert registry.timer("late").count == 1


class TestThreads:
    def test_stacks_are_per_thread(self):
        clock, tracer = manual_tracer()
        depths = {}
        barrier = threading.Barrier(2)

        def worker(label):
            with tracer.span(f"outer.{label}"):
                barrier.wait(timeout=5)
                depths[label] = tracer.active_depth()
                with tracer.span(f"inner.{label}"):
                    pass

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # Each thread saw only its own open span, never the sibling's.
        assert depths == {0: 1, 1: 1}
        inner = [span for span in tracer.finished()
                 if span.name.startswith("inner.")]
        assert {span.depth for span in inner} == {1}
        assert len({span.thread_id for span in inner}) == 2


class TestNullTracer:
    def test_span_is_one_shared_object(self):
        # Zero allocation when disabled: every call returns the same
        # preallocated no-op span.
        assert NULL_TRACER.span("a") is NULL_TRACER.span("b")
        assert NULL_TRACER.span("a", keyword="x") is NULL_TRACER.span("a")

    def test_null_span_is_inert(self):
        with NULL_TRACER.span("anything", attr=1) as span:
            span.annotate(more=2)
        assert NULL_TRACER.finished() == []
        assert NULL_TRACER.dropped == 0
        assert NULL_TRACER.active_depth() == 0
        assert list(NULL_TRACER) == []

    def test_flags(self):
        assert NULL_TRACER.enabled is False
        assert Tracer().enabled is True
        assert isinstance(NULL_TRACER, NullTracer)

    def test_observe_is_a_no_op(self):
        NULL_TRACER.observe("x", 1.0)  # must not raise
        assert NULL_TRACER.registry is None
