"""The persisted OntoScore expansion cache (the cache layer).

Two halves: unit coverage of :class:`OntoScoreCache` (hit/miss/
invalidation counters, epoch advance, the empty-expansion sentinel),
and the acceptance differential -- a cache-cold and a cache-warm
engine ``build_index`` must produce byte-identical ``canonical_dump``
output across Memory, SQLite and mmap backends, so the cache can never
change what gets built, only how fast.
"""

from __future__ import annotations

import pytest

from repro.core.config import (GRAPH, RELATIONSHIPS, XRANK,
                               XOntoRankConfig)
from repro.core.ontoscore import OntoScoreCache, expansion_params
from repro.core.query.engine import XOntoRankEngine
from repro.core.stats import (ONTOLOGY_CACHE_HITS,
                              ONTOLOGY_CACHE_INVALIDATIONS,
                              ONTOLOGY_CACHE_MISSES, StatsRegistry)
from repro.ir.tokenizer import Keyword
from repro.storage import (MemoryStore, MmapStore, SQLiteStore,
                           atomic_mmap_build, canonical_dump)

ASTHMA_KW = Keyword(("asthma",))
PHRASE_KW = Keyword(("cardiac", "arrest"), is_phrase=True)
SCORES = {"195967001": 1.0, "233604007": 0.25}


def _cache(store, fingerprint="fp-a", params=None, stats=None,
           strategy=RELATIONSHIPS):
    if params is None:
        params = expansion_params(XOntoRankConfig())
    return OntoScoreCache(store, fingerprint, strategy, params,
                          stats=stats)


class TestRoundTrip:
    def test_put_get_and_counters(self):
        stats = StatsRegistry()
        cache = _cache(MemoryStore(), stats=stats)
        assert cache.get(ASTHMA_KW) is None
        cache.put(ASTHMA_KW, SCORES)
        assert cache.get(ASTHMA_KW) == SCORES
        snapshot = stats.snapshot()
        assert snapshot[ONTOLOGY_CACHE_MISSES] == 1
        assert snapshot[ONTOLOGY_CACHE_HITS] == 1
        assert ONTOLOGY_CACHE_INVALIDATIONS not in snapshot

    def test_empty_expansion_is_cached_not_missed(self):
        stats = StatsRegistry()
        cache = _cache(MemoryStore(), stats=stats)
        cache.put(ASTHMA_KW, {})
        # {} round-trips as a *hit*: without the sentinel an empty
        # expansion would be recomputed on every build forever.
        assert cache.get(ASTHMA_KW) == {}
        assert stats.snapshot()[ONTOLOGY_CACHE_HITS] == 1
        assert ONTOLOGY_CACHE_MISSES not in stats.snapshot()

    def test_phrase_and_token_keys_are_distinct(self):
        cache = _cache(MemoryStore())
        single = Keyword(("cardiac arrest",))
        cache.put(PHRASE_KW, {"1": 1.0})
        cache.put(single, {"2": 1.0})
        assert cache.get(PHRASE_KW) == {"1": 1.0}
        assert cache.get(single) == {"2": 1.0}

    def test_scores_survive_sqlite_reopen(self, tmp_path):
        path = str(tmp_path / "cache.db")
        cache = _cache(SQLiteStore(path))
        cache.put(ASTHMA_KW, SCORES)
        cache.close()
        reopened = _cache(SQLiteStore(path))
        assert not reopened.invalidated
        assert reopened.get(ASTHMA_KW) == SCORES


class TestInvalidation:
    def test_fresh_store_starts_at_epoch_one(self):
        stats = StatsRegistry()
        cache = _cache(MemoryStore(), stats=stats)
        assert cache.epoch == 1
        assert not cache.invalidated
        assert ONTOLOGY_CACHE_INVALIDATIONS not in stats.snapshot()

    def test_matching_descriptor_reattaches_warm(self):
        store = MemoryStore()
        first = _cache(store)
        first.put(ASTHMA_KW, SCORES)
        second = _cache(store)
        assert not second.invalidated
        assert second.epoch == first.epoch
        assert second.get(ASTHMA_KW) == SCORES

    def test_fingerprint_mismatch_advances_epoch(self):
        store = MemoryStore()
        stats = StatsRegistry()
        first = _cache(store, fingerprint="fp-a")
        first.put(ASTHMA_KW, SCORES)
        second = _cache(store, fingerprint="fp-b", stats=stats)
        assert second.invalidated
        assert second.epoch == first.epoch + 1
        # Stale entries live in the old epoch's namespace: unreachable.
        assert second.get(ASTHMA_KW) is None
        assert stats.snapshot()[ONTOLOGY_CACHE_INVALIDATIONS] == 1

    def test_params_mismatch_invalidates(self):
        store = MemoryStore()
        base = expansion_params(XOntoRankConfig())
        _cache(store, params=base).put(ASTHMA_KW, SCORES)
        changed = dict(base, threshold=base["threshold"] / 2)
        second = _cache(store, params=changed)
        assert second.invalidated
        assert second.get(ASTHMA_KW) is None

    def test_strategies_are_independent_namespaces(self):
        store = MemoryStore()
        rel = _cache(store, strategy=RELATIONSHIPS)
        rel.put(ASTHMA_KW, SCORES)
        graph = _cache(store, strategy=GRAPH)
        assert not graph.invalidated  # no prior graph descriptor
        assert graph.get(ASTHMA_KW) is None
        assert rel.get(ASTHMA_KW) == SCORES


class TestEngineIntegration:
    def test_xrank_attach_returns_none(self, cda_corpus,
                                       synthetic_ontology):
        engine = XOntoRankEngine(cda_corpus, synthetic_ontology,
                                 strategy=XRANK)
        assert engine.attach_ontology_cache(MemoryStore()) is None

    def test_cold_then_warm_counters(self, cda_corpus,
                                     synthetic_ontology):
        cache_store = MemoryStore()
        cold = XOntoRankEngine(cda_corpus, synthetic_ontology,
                               strategy=RELATIONSHIPS)
        cold.attach_ontology_cache(cache_store)
        cold.build_index()
        cold_stats = cold.stats.snapshot()
        assert cold_stats[ONTOLOGY_CACHE_MISSES] > 0
        assert cold_stats.get(ONTOLOGY_CACHE_HITS, 0) == 0

        warm = XOntoRankEngine(cda_corpus, synthetic_ontology,
                               strategy=RELATIONSHIPS)
        warm.attach_ontology_cache(cache_store)
        warm.build_index()
        warm_stats = warm.stats.snapshot()
        assert warm_stats[ONTOLOGY_CACHE_HITS] \
            == cold_stats[ONTOLOGY_CACHE_MISSES]
        assert warm_stats.get(ONTOLOGY_CACHE_MISSES, 0) == 0


class TestColdWarmDifferential:
    """The acceptance gate: cache-warm and cache-cold builds are
    byte-identical through every backend."""

    @pytest.fixture(scope="class")
    def dumps(self, tmp_path_factory, cda_corpus, synthetic_ontology):
        root = tmp_path_factory.mktemp("onto_cache_diff")
        cache_store = MemoryStore()
        results = {}
        for mode in ("cold", "warm"):
            engine = XOntoRankEngine(cda_corpus, synthetic_ontology,
                                     strategy=RELATIONSHIPS)
            engine.attach_ontology_cache(cache_store)
            memory = MemoryStore()
            sqlite = SQLiteStore(str(root / f"{mode}.db"))
            mmap_path = str(root / f"{mode}.mm")
            with atomic_mmap_build(mmap_path) as writer:
                for store in (memory, sqlite, writer):
                    engine.build_index(store=store)
            mmap = MmapStore(mmap_path)
            for backend, store in (("memory", memory),
                                   ("sqlite", sqlite),
                                   ("mmap", mmap)):
                results[(mode, backend)] = canonical_dump(
                    store, [RELATIONSHIPS])
            mmap.close()
            sqlite.close()
            # The cold pass populated the shared cache store; the warm
            # pass must serve every expansion from it.
            snapshot = engine.stats.snapshot()
            if mode == "cold":
                assert snapshot[ONTOLOGY_CACHE_MISSES] > 0
            else:
                assert snapshot.get(ONTOLOGY_CACHE_MISSES, 0) == 0
                assert snapshot[ONTOLOGY_CACHE_HITS] > 0
        return results

    def test_all_six_dumps_identical(self, dumps):
        assert len(set(dumps.values())) == 1

    @pytest.mark.parametrize("backend", ("memory", "sqlite", "mmap"))
    def test_cold_equals_warm_per_backend(self, dumps, backend):
        assert dumps[("cold", backend)] == dumps[("warm", backend)]
