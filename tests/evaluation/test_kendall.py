"""Unit tests for the top-k Kendall tau distance (Fagin et al.)."""

import pytest

from repro.evaluation.kendall import (average_matrices, distance_matrix,
                                      kendall_tau_topk)


class TestBasicCases:
    def test_identical_lists(self):
        assert kendall_tau_topk(["a", "b", "c"], ["a", "b", "c"]) == 0.0

    def test_disjoint_lists_are_maximal(self):
        assert kendall_tau_topk(["a", "b"], ["c", "d"], p=0.5) == \
            pytest.approx(1.0)
        assert kendall_tau_topk(["a", "b"], ["c", "d"], p=0.0) == \
            pytest.approx(1.0)

    def test_reversal(self):
        # Full reversal of the same items: every pair disagrees.
        distance = kendall_tau_topk(["a", "b", "c"], ["c", "b", "a"],
                                    normalize=False)
        assert distance == 3.0

    def test_single_swap(self):
        distance = kendall_tau_topk(["a", "b", "c"], ["a", "c", "b"],
                                    normalize=False)
        assert distance == 1.0

    def test_empty_lists(self):
        assert kendall_tau_topk([], []) == 0.0

    def test_symmetry(self):
        left = ["a", "b", "c", "d"]
        right = ["b", "e", "a", "f"]
        assert kendall_tau_topk(left, right, p=0.5) == \
            pytest.approx(kendall_tau_topk(right, left, p=0.5))


class TestCaseRules:
    def test_case2_consistent_truncation_free(self):
        # b missing from the second list; a ranked above b in the first:
        # consistent, zero distance.
        assert kendall_tau_topk(["a", "b"], ["a"]) == 0.0

    def test_case2_inconsistent_truncation_penalized(self):
        # b above a in the first list, yet only a survives in the second.
        distance = kendall_tau_topk(["b", "a"], ["a"], normalize=False)
        assert distance == 1.0

    def test_case3_cross_exclusive_pairs(self):
        distance = kendall_tau_topk(["a"], ["b"], normalize=False)
        assert distance == 1.0

    def test_case4_penalty_parameter(self):
        # Pair (b, c) exists only in the first list.
        base = kendall_tau_topk(["a", "b", "c"], ["a"], p=0.0,
                                normalize=False)
        penalized = kendall_tau_topk(["a", "b", "c"], ["a"], p=1.0,
                                     normalize=False)
        assert penalized == base + 1.0

    def test_p_validation(self):
        with pytest.raises(ValueError):
            kendall_tau_topk(["a"], ["a"], p=2.0)

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError):
            kendall_tau_topk(["a", "a"], ["b"])

    def test_normalized_in_unit_interval(self):
        lists = (["a", "b", "c"], ["c", "d", "e"], ["x", "y", "z"],
                 ["a", "z", "d"])
        for left in lists:
            for right in lists:
                value = kendall_tau_topk(left, right, p=0.5)
                assert 0.0 <= value <= 1.0 + 1e-12


class TestMatrices:
    def test_distance_matrix_shape(self):
        matrix = distance_matrix({"x": ["a"], "y": ["a"], "z": ["b"]})
        assert matrix[("x", "x")] == 0.0
        assert matrix[("x", "y")] == 0.0
        assert matrix[("x", "z")] == matrix[("z", "x")] == \
            pytest.approx(1.0)

    def test_average_matrices(self):
        first = {("a", "b"): 0.2}
        second = {("a", "b"): 0.6}
        assert average_matrices([first, second]) == {("a", "b"): 0.4}

    def test_average_requires_same_keys(self):
        with pytest.raises(ValueError):
            average_matrices([{("a", "b"): 0.1}, {("a", "c"): 0.1}])

    def test_average_empty(self):
        assert average_matrices([]) == {}
