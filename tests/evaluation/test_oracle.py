"""Unit tests for the simulated expert relevance oracle."""

import pytest

from repro.evaluation.oracle import RelevanceOracle, expert_selection
from repro.ontology import TerminologyService, snomed
from repro.ontology.snomed import build_core_ontology
from repro.xmldoc.model import OntologicalReference, XMLNode


@pytest.fixture(scope="module")
def oracle():
    ontology = build_core_ontology()
    return RelevanceOracle(ontology, TerminologyService([ontology]))


def fragment_with_text(text):
    root = XMLNode("section")
    root.add("paragraph", text=text)
    return root


def fragment_with_code(code):
    root = XMLNode("entry")
    root.add("value", {"displayName": ""},
             reference=OntologicalReference(snomed.SNOMED_SYSTEM_CODE,
                                            code))
    return root


class TestTextualJudgment:
    def test_exact_text_is_relevant(self, oracle):
        fragment = fragment_with_text(
            "cardiac arrest treated with amiodarone")
        assert oracle.is_relevant('"cardiac arrest" amiodarone', fragment)

    def test_phrase_requires_adjacency(self, oracle):
        fragment = fragment_with_text("cardiac issues without arrest")
        assert not oracle.is_relevant('"cardiac arrest"', fragment)

    def test_missing_keyword_fails(self, oracle):
        fragment = fragment_with_text("cardiac arrest only")
        judgment = oracle.judge('"cardiac arrest" amiodarone', fragment)
        assert not judgment.relevant
        assert any("not satisfied" in reason
                   for reason in judgment.reasons)


class TestOntologicalJudgment:
    def test_same_concept(self, oracle):
        assert oracle.is_relevant("asthma",
                                  fragment_with_code(snomed.ASTHMA))

    def test_near_subclass_accepted(self, oracle):
        # Atrial fibrillation is-a Supraventricular arrhythmia (1 level).
        fragment = fragment_with_code(snomed.ATRIAL_FIBRILLATION)
        assert oracle.is_relevant('"supraventricular arrhythmia"',
                                  fragment)

    def test_far_descendant_rejected(self, oracle):
        # Atrial fibrillation is 4+ levels below Clinical finding; the
        # expert rejects keyword matches to far ancestors.
        fragment = fragment_with_code(snomed.ATRIAL_FIBRILLATION)
        assert not oracle.is_relevant("finding", fragment)

    def test_ancestor_concept_rejected(self, oracle):
        # A fragment about the *general* disorder does not answer a
        # query for the specific one.
        fragment = fragment_with_code(snomed.CARDIAC_ARRHYTHMIA)
        assert not oracle.is_relevant('"atrial fibrillation"', fragment)

    def test_finding_site_accepted(self, oracle):
        # The intro example: an Asthma fragment answers a query about
        # the Bronchial Structure.
        fragment = fragment_with_code(snomed.ASTHMA)
        assert oracle.is_relevant('"bronchial structure"', fragment)

    def test_inherited_finding_site_accepted(self, oracle):
        # Asthma attack inherits the bronchial finding site through its
        # ancestors too.
        fragment = fragment_with_code(snomed.ASTHMA_ATTACK)
        assert oracle.is_relevant('"bronchial structure"', fragment)

    def test_drug_subclass_accepted(self, oracle):
        # Imipenem is-a Carbapenem: a carbapenem query is satisfied.
        fragment = fragment_with_code(snomed.IMIPENEM)
        assert oracle.is_relevant("carbapenem", fragment)

    def test_sibling_drug_rejected(self, oracle):
        """The acetaminophen/aspirin trap: 'in this specific case...
        these drugs are generally unrelated'."""
        fragment = fragment_with_code(snomed.ASPIRIN)
        assert not oracle.is_relevant("acetaminophen", fragment)

    def test_therapy_context_rejected_for_drug_keyword(self, oracle):
        fragment = fragment_with_code(snomed.PAIN_CONTROL)
        assert not oracle.is_relevant("acetaminophen", fragment)

    def test_directly_related_disorder_accepted(self, oracle):
        # Cardiac arrest has a due-to edge to ventricular tachycardia.
        fragment = fragment_with_code(snomed.VENTRICULAR_TACHYCARDIA)
        assert oracle.is_relevant('"cardiac arrest"', fragment)

    def test_unrelated_concept_rejected(self, oracle):
        fragment = fragment_with_code(snomed.BODY_HEIGHT)
        assert not oracle.is_relevant("asthma", fragment)

    def test_unknown_keyword_fails_gracefully(self, oracle):
        fragment = fragment_with_code(snomed.ASTHMA)
        assert not oracle.is_relevant("xylophone", fragment)


class TestExpertSelection:
    def test_cap_respected(self, oracle):
        fragments = [(f"r{i}", fragment_with_code(snomed.ASTHMA))
                     for i in range(8)]
        marked = expert_selection(oracle, "asthma", fragments, limit=5)
        assert len(marked) == 5
        assert marked == {"r0", "r1", "r2", "r3", "r4"}

    def test_irrelevant_skipped(self, oracle):
        fragments = [("bad", fragment_with_code(snomed.BODY_HEIGHT)),
                     ("good", fragment_with_code(snomed.ASTHMA))]
        marked = expert_selection(oracle, "asthma", fragments, limit=5)
        assert marked == {"good"}

    def test_depth_bound_configurable(self):
        ontology = build_core_ontology()
        strict = RelevanceOracle(ontology, max_subsumption_depth=1)
        lenient = RelevanceOracle(ontology, max_subsumption_depth=4)
        fragment = fragment_with_code(snomed.ATRIAL_FIBRILLATION)
        # AFib is two is-a levels below Cardiac arrhythmia.
        assert not strict.is_relevant('"cardiac arrhythmia"', fragment)
        assert lenient.is_relevant('"cardiac arrhythmia"', fragment)

    def test_depth_validation(self):
        with pytest.raises(ValueError):
            RelevanceOracle(build_core_ontology(), max_subsumption_depth=0)
