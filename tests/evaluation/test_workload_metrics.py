"""Unit tests for the workload definition and the survey protocol."""

import pytest

from repro.core.query.results import QueryResult
from repro.evaluation.metrics import (precision_at_k, recall_at_k,
                                      run_survey)
from repro.evaluation.oracle import RelevanceOracle
from repro.evaluation.workload import (PUBLISHED, TABLE1_WORKLOAD,
                                       WORKLOAD, table1_queries,
                                       table2_queries)
from repro.xmldoc.dewey import DeweyID


class TestWorkload:
    def test_twenty_queries(self):
        assert len(table2_queries()) == 20
        assert len(table1_queries()) == 10

    def test_unique_ids(self):
        ids = [query.query_id for query in WORKLOAD]
        assert len(ids) == len(set(ids))

    def test_all_queries_parse_to_two_keywords(self):
        """The paper's workload is 'a series of two-keyword queries'."""
        for workload_query in WORKLOAD:
            parsed = workload_query.parse()
            assert len(parsed) == 2, workload_query.text

    def test_acetaminophen_trap_query_published(self):
        trap = next(query for query in TABLE1_WORKLOAD
                    if "acetaminophen" in query.text)
        assert trap.provenance == PUBLISHED
        assert "supraventricular arrhythmia" in trap.text

    def test_provenance_recorded(self):
        assert all(query.provenance in ("published", "reconstructed",
                                        "synthesized")
                   for query in WORKLOAD)


def make_result(encoded, score):
    return QueryResult(dewey=DeweyID.parse(encoded), score=score,
                       keyword_scores=(score,))


class TestPrecisionRecall:
    def test_precision_at_k(self):
        results = [make_result("0.1", 1.0), make_result("0.2", 0.5),
                   make_result("1.1", 0.2)]
        relevant = {"0.1", "1.1"}
        assert precision_at_k(results, relevant, k=2) == 0.5
        assert precision_at_k(results, relevant, k=3) == \
            pytest.approx(2 / 3)

    def test_recall_at_k(self):
        results = [make_result("0.1", 1.0), make_result("0.2", 0.5)]
        relevant = {"0.1", "9.9"}
        assert recall_at_k(results, relevant, k=2) == 0.5
        assert recall_at_k(results, set(), k=2) == 0.0

    def test_empty_results(self):
        assert precision_at_k([], {"x"}, k=5) == 0.0

    def test_k_validation(self):
        with pytest.raises(ValueError):
            precision_at_k([], set(), k=0)
        with pytest.raises(ValueError):
            recall_at_k([], set(), k=0)


class TestSurvey:
    def test_survey_row_shape(self, engines, synthetic_ontology,
                              terminology):
        oracle = RelevanceOracle(synthetic_ontology, terminology)
        row = run_survey(engines, oracle, "asthma theophylline", "Q9")
        assert set(row.counts) == set(engines)
        assert all(0 <= count <= 5 for count in row.counts.values())
        assert len(row.marked) <= 5

    def test_counts_bounded_by_marks(self, engines, synthetic_ontology,
                                     terminology):
        oracle = RelevanceOracle(synthetic_ontology, terminology)
        row = run_survey(engines, oracle, "fever acetaminophen", "Q18")
        for name, engine in engines.items():
            top = engine.search(row.query_text, k=5)
            keys = {result.dewey.encode() for result in top}
            assert row.counts[name] == len(keys & row.marked)
