"""Unit tests for the workload definition and the survey protocol."""

import pytest

from repro.core.query.results import QueryResult
from repro.evaluation.metrics import (precision_at_k, recall_at_k,
                                      run_survey)
from repro.evaluation.oracle import RelevanceOracle
from repro.evaluation.workload import (NARRATIVE_WORKLOAD, PUBLISHED,
                                       STOPWORD_GLUE, SYNONYM_PHRASING,
                                       TABLE1_WORKLOAD, WORKLOAD,
                                       narrative_queries, table1_queries,
                                       table2_queries)
from repro.ir.tokenizer import tokenize_without_stopwords
from repro.xmldoc.dewey import DeweyID


class TestWorkload:
    def test_twenty_queries(self):
        assert len(table2_queries()) == 20
        assert len(table1_queries()) == 10

    def test_unique_ids(self):
        ids = [query.query_id for query in WORKLOAD]
        assert len(ids) == len(set(ids))

    def test_all_queries_parse_to_two_keywords(self):
        """The paper's workload is 'a series of two-keyword queries'."""
        for workload_query in WORKLOAD:
            parsed = workload_query.parse()
            assert len(parsed) == 2, workload_query.text

    def test_acetaminophen_trap_query_published(self):
        trap = next(query for query in TABLE1_WORKLOAD
                    if "acetaminophen" in query.text)
        assert trap.provenance == PUBLISHED
        assert "supraventricular arrhythmia" in trap.text

    def test_provenance_recorded(self):
        assert all(query.provenance in ("published", "reconstructed",
                                        "synthesized")
                   for query in WORKLOAD)


class TestNarrativeWorkload:
    def test_one_variant_per_curated_query(self):
        assert len(NARRATIVE_WORKLOAD) == len(WORKLOAD)
        assert {variant.query_id for variant in NARRATIVE_WORKLOAD} == \
            {query.query_id for query in WORKLOAD}
        ids = [variant.variant_id for variant in NARRATIVE_WORKLOAD]
        assert len(ids) == len(set(ids))

    def test_pairs_align(self):
        for curated, variant in narrative_queries():
            assert variant.query_id == curated.query_id

    def test_styles_valid_and_both_exercised(self):
        styles = [variant.style for variant in NARRATIVE_WORKLOAD]
        assert set(styles) <= {STOPWORD_GLUE, SYNONYM_PHRASING}
        assert styles.count(SYNONYM_PHRASING) >= 5

    def test_glue_variants_add_only_stopwords(self):
        """A glue-style paraphrase must carry exactly the curated
        query's information content: every non-stopword token of the
        narrative text already occurs in the curated query."""
        for curated, variant in narrative_queries():
            if variant.style != STOPWORD_GLUE:
                continue
            curated_tokens = set(tokenize_without_stopwords(curated.text))
            variant_tokens = set(tokenize_without_stopwords(variant.text))
            assert variant_tokens == curated_tokens, variant.variant_id


def make_result(encoded, score):
    return QueryResult(dewey=DeweyID.parse(encoded), score=score,
                       keyword_scores=(score,))


class TestPrecisionRecall:
    def test_precision_at_k(self):
        results = [make_result("0.1", 1.0), make_result("0.2", 0.5),
                   make_result("1.1", 0.2)]
        relevant = {"0.1", "1.1"}
        assert precision_at_k(results, relevant, k=2) == 0.5
        assert precision_at_k(results, relevant, k=3) == \
            pytest.approx(2 / 3)

    def test_recall_at_k(self):
        results = [make_result("0.1", 1.0), make_result("0.2", 0.5)]
        relevant = {"0.1", "9.9"}
        assert recall_at_k(results, relevant, k=2) == 0.5
        assert recall_at_k(results, set(), k=2) == 0.0

    def test_empty_results(self):
        assert precision_at_k([], {"x"}, k=5) == 0.0

    def test_k_validation(self):
        with pytest.raises(ValueError):
            precision_at_k([], set(), k=0)
        with pytest.raises(ValueError):
            recall_at_k([], set(), k=0)


class TestSurvey:
    def test_survey_row_shape(self, engines, synthetic_ontology,
                              terminology):
        oracle = RelevanceOracle(synthetic_ontology, terminology)
        row = run_survey(engines, oracle, "asthma theophylline", "Q9")
        assert set(row.counts) == set(engines)
        assert all(0 <= count <= 5 for count in row.counts.values())
        assert len(row.marked) <= 5

    def test_counts_bounded_by_marks(self, engines, synthetic_ontology,
                                     terminology):
        oracle = RelevanceOracle(synthetic_ontology, terminology)
        row = run_survey(engines, oracle, "fever acetaminophen", "Q18")
        for name, engine in engines.items():
            top = engine.search(row.query_text, k=5)
            keys = {result.dewey.encode() for result in top}
            assert row.counts[name] == len(keys & row.marked)
