"""ShardedCorpus: deterministic partitioning invariants."""

from __future__ import annotations

import zlib

import pytest

from repro.xmldoc.model import Corpus, XMLDocument, XMLNode
from repro.xmldoc.sharding import (HASH, ROUND_ROBIN, ShardedCorpus,
                                   hash_shard)


def make_corpus(doc_ids) -> Corpus:
    corpus = Corpus()
    for doc_id in doc_ids:
        root = XMLNode(tag="record", text=f"patient {doc_id}")
        corpus.add(XMLDocument(doc_id=doc_id, root=root))
    return corpus


@pytest.fixture()
def corpus():
    return make_corpus(range(10))


class TestPartition:
    @pytest.mark.parametrize("policy", [HASH, ROUND_ROBIN])
    @pytest.mark.parametrize("shard_count", [1, 2, 3, 7])
    def test_complete_and_disjoint(self, corpus, policy, shard_count):
        sharded = ShardedCorpus(corpus, shard_count, policy=policy)
        shard_ids = [frozenset(doc.doc_id for doc in shard)
                     for shard in sharded]
        union = frozenset().union(*shard_ids)
        assert union == {doc.doc_id for doc in corpus}
        assert sum(len(ids) for ids in shard_ids) == len(corpus)

    def test_documents_keep_global_ids(self, corpus):
        """Dewey IDs root at the global doc_id, so sharding must not
        renumber documents."""
        sharded = ShardedCorpus(corpus, 3)
        for shard in sharded:
            for document in shard:
                assert document is corpus.get(document.doc_id)

    def test_assignment_is_deterministic(self, corpus):
        first = ShardedCorpus(corpus, 4).assignment()
        second = ShardedCorpus(make_corpus(range(10)), 4).assignment()
        assert first == second

    def test_round_robin_balances_sorted_order(self, corpus):
        sharded = ShardedCorpus(corpus, 3, policy=ROUND_ROBIN)
        for position, document in enumerate(corpus):
            assert sharded.shard_of(document.doc_id) == position % 3
        sizes = sorted(len(shard) for shard in sharded)
        assert max(sizes) - min(sizes) <= 1

    def test_hash_assignment_survives_collection_changes(self):
        """A document's shard is a function of its own ID alone."""
        small = ShardedCorpus(make_corpus([3, 5, 8]), 4)
        large = ShardedCorpus(make_corpus(range(10)), 4)
        for doc_id in (3, 5, 8):
            assert small.shard_of(doc_id) == large.shard_of(doc_id)

    def test_hash_shard_is_crc32(self):
        assert hash_shard(42, 5) == \
            zlib.crc32(b"42") % 5
        assert all(0 <= hash_shard(doc_id, 7) < 7
                   for doc_id in range(100))


class TestAccessors:
    def test_shard_of_unknown_document(self, corpus):
        sharded = ShardedCorpus(corpus, 2)
        with pytest.raises(KeyError):
            sharded.shard_of(999)

    def test_shard_doc_ids_inverts_assignment(self, corpus):
        sharded = ShardedCorpus(corpus, 3)
        for shard in range(sharded.shard_count):
            for doc_id in sharded.shard_doc_ids(shard):
                assert sharded.shard_of(doc_id) == shard

    def test_len_and_iter(self, corpus):
        sharded = ShardedCorpus(corpus, 4)
        assert len(sharded) == 4
        assert sharded.shard_count == 4
        assert [len(shard) for shard in sharded] == \
            [len(sharded.shard_doc_ids(i)) for i in range(4)]
        assert [doc.doc_id for doc in sharded.documents()] == \
            sorted(doc.doc_id for doc in corpus)

    def test_more_shards_than_documents(self):
        sharded = ShardedCorpus(make_corpus([0, 1]), 5,
                                policy=ROUND_ROBIN)
        assert sum(len(shard) for shard in sharded) == 2
        assert sum(1 for shard in sharded if len(shard) == 0) == 3


class TestValidation:
    def test_rejects_bad_shard_count(self, corpus):
        with pytest.raises(ValueError):
            ShardedCorpus(corpus, 0)

    def test_rejects_unknown_policy(self, corpus):
        with pytest.raises(ValueError):
            ShardedCorpus(corpus, 2, policy="random")
