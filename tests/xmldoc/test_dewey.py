"""Unit tests for Dewey IDs (Section V, Figure 9)."""

import pytest

from repro.xmldoc.dewey import (DeweyID, assign_dewey_ids, document_order,
                                node_at)
from repro.xmldoc.model import XMLDocument, XMLNode


class TestDeweyID:
    def test_encode_parse_roundtrip(self):
        dewey = DeweyID(7, (0, 2, 1))
        assert dewey.encode() == "7.0.2.1"
        assert DeweyID.parse("7.0.2.1") == dewey

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            DeweyID.parse("7.a.1")
        with pytest.raises(ValueError):
            DeweyID.parse("")

    def test_negative_components_rejected(self):
        with pytest.raises(ValueError):
            DeweyID(-1)
        with pytest.raises(ValueError):
            DeweyID(0, (1, -2))

    def test_child_and_parent(self):
        dewey = DeweyID(3, (1,))
        assert dewey.child(4) == DeweyID(3, (1, 4))
        assert dewey.child(4).parent() == dewey

    def test_root_has_no_parent(self):
        with pytest.raises(ValueError):
            DeweyID(0).parent()

    def test_depth(self):
        assert DeweyID(0).depth == 0
        assert DeweyID(0, (1, 2)).depth == 2

    def test_ancestor_descendant(self):
        ancestor = DeweyID(1, (0,))
        descendant = DeweyID(1, (0, 3, 2))
        assert ancestor.is_ancestor_of(descendant)
        assert descendant.is_descendant_of(ancestor)
        assert not descendant.is_ancestor_of(ancestor)
        assert not ancestor.is_ancestor_of(ancestor)  # proper

    def test_no_ancestry_across_documents(self):
        assert not DeweyID(1).is_ancestor_of(DeweyID(2, (0,)))

    def test_contains_is_reflexive(self):
        dewey = DeweyID(1, (2,))
        assert dewey.contains(dewey)
        assert dewey.contains(dewey.child(0))

    def test_distance_to_descendant(self):
        ancestor = DeweyID(0, (1,))
        assert ancestor.distance_to_descendant(ancestor) == 0
        assert ancestor.distance_to_descendant(DeweyID(0, (1, 2, 3))) == 2
        with pytest.raises(ValueError):
            ancestor.distance_to_descendant(DeweyID(0, (2,)))

    def test_common_ancestor(self):
        left = DeweyID(0, (1, 2, 3))
        right = DeweyID(0, (1, 4))
        assert left.common_ancestor(right) == DeweyID(0, (1,))
        assert left.common_ancestor(DeweyID(1, (1,))) is None

    def test_ordering_is_document_order(self):
        ids = [DeweyID(0, (1, 2)), DeweyID(0, (1,)), DeweyID(0, (0, 9)),
               DeweyID(1,), DeweyID(0, (1, 2, 0))]
        ordered = list(document_order(ids))
        assert [d.encode() for d in ordered] == \
            ["0.0.9", "0.1", "0.1.2", "0.1.2.0", "1"]

    def test_hash_consistency(self):
        assert len({DeweyID(0, (1,)), DeweyID(0, (1,))}) == 1

    def test_eq_other_type(self):
        assert DeweyID(0) != "0"


class TestAssignment:
    def build_document(self):
        root = XMLNode("a")
        b = root.add("b")
        b.add("d")
        b.add("e")
        root.add("c")
        return XMLDocument(doc_id=9, root=root)

    def test_assign_matches_structure(self):
        document = self.build_document()
        ids = assign_dewey_ids(document)
        by_tag = {node.tag: dewey.encode() for node, dewey in ids.items()}
        assert by_tag == {"a": "9", "b": "9.0", "d": "9.0.0",
                          "e": "9.0.1", "c": "9.1"}

    def test_node_at_inverts_assignment(self):
        document = self.build_document()
        for node, dewey in assign_dewey_ids(document).items():
            assert node_at(document, dewey) is node

    def test_node_at_checks_document(self):
        document = self.build_document()
        with pytest.raises(ValueError):
            node_at(document, DeweyID(1))

    def test_node_at_missing_path(self):
        document = self.build_document()
        with pytest.raises(LookupError):
            node_at(document, DeweyID(9, (5,)))
