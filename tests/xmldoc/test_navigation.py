"""Unit tests for subtree extraction / structural queries."""

import pytest

from repro.xmldoc.dewey import DeweyID
from repro.xmldoc.model import Corpus, XMLDocument, XMLNode
from repro.xmldoc.navigation import (copy_subtree, extract_fragment,
                                     iter_matching, path_to_root,
                                     prune_to_paths, subtree_size,
                                     tree_depth)
from repro.xmldoc.parser import parse_document


@pytest.fixture
def document():
    return parse_document(
        "<root><s1><a>one</a><b>two</b></s1><s2><c>three</c></s2></root>",
        doc_id=4)


class TestCopy:
    def test_copy_is_deep_and_detached(self, document):
        s1 = document.root.children[0]
        clone = copy_subtree(s1)
        assert clone.parent is None
        assert clone.children[0] is not s1.children[0]
        assert clone.children[0].text == "one"

    def test_copy_preserves_reference(self):
        from repro.xmldoc.model import OntologicalReference
        node = XMLNode("v", reference=OntologicalReference("s", "1"))
        assert copy_subtree(node).reference == node.reference

    def test_mutating_copy_leaves_original(self, document):
        clone = copy_subtree(document.root)
        clone.children[0].detach()
        assert len(document.root.children) == 2


class TestExtraction:
    def test_extract_fragment(self, document):
        corpus = Corpus([document])
        fragment = extract_fragment(corpus, DeweyID(4, (0,)))
        assert fragment.tag == "s1"
        assert subtree_size(fragment) == 3

    def test_path_to_root(self, document):
        path = path_to_root(document, DeweyID(4, (1, 0)))
        assert [node.tag for node in path] == ["root", "s2", "c"]

    def test_iter_matching(self, document):
        leaves = list(iter_matching(document,
                                    lambda node: not node.children))
        assert [node.tag for node in leaves] == ["a", "b", "c"]


class TestMetrics:
    def test_subtree_size(self, document):
        assert subtree_size(document.root) == 6

    def test_tree_depth(self, document):
        assert tree_depth(document.root) == 2
        assert tree_depth(document.root.children[0].children[0]) == 0


class TestPrune:
    def test_prune_keeps_only_target_paths(self, document):
        root = document.root
        target = root.children[0].children[1]  # <b>
        pruned = prune_to_paths(root, [target])
        assert pruned.tag == "root"
        assert [child.tag for child in pruned.children] == ["s1"]
        assert [child.tag for child in pruned.children[0].children] == ["b"]

    def test_prune_multiple_targets(self, document):
        root = document.root
        targets = [root.children[0].children[0], root.children[1]]
        pruned = prune_to_paths(root, targets)
        tags = [node.tag for node in pruned.iter()]
        assert tags == ["root", "s1", "a", "s2", "c"]

    def test_prune_preserves_target_subtrees(self, document):
        root = document.root
        pruned = prune_to_paths(root, [root.children[1]])
        s2 = pruned.children[0]
        assert [node.tag for node in s2.iter()] == ["s2", "c"]

    def test_prune_rejects_outside_targets(self, document):
        other = XMLNode("stranger")
        with pytest.raises(ValueError):
            prune_to_paths(document.root, [other])
