"""Unit tests for XML parsing and serialization."""

import pytest

from repro.xmldoc.model import OntologicalReference
from repro.xmldoc.parser import (XMLParseError, XMLParser,
                                 cda_reference_extractor,
                                 no_reference_extractor, parse_document)
from repro.xmldoc.serializer import (XMLSerializer, escape_attribute,
                                     escape_text, serialize)

SAMPLE = (
    '<?xml version="1.0"?>'
    '<doc a="1"><x code="195967001" codeSystem="2.16.840.1.113883.6.96" '
    'displayName="Asthma"/><y>hello <b>bold</b> tail</y></doc>'
)


class TestParser:
    def test_parses_structure(self):
        document = parse_document(SAMPLE)
        assert document.root.tag == "doc"
        assert [child.tag for child in document.root.children] == ["x", "y"]

    def test_attribute_order_preserved(self):
        document = parse_document(SAMPLE)
        x = document.root.children[0]
        assert list(x.attributes) == ["code", "codeSystem", "displayName"]

    def test_cda_reference_extraction(self):
        document = parse_document(SAMPLE)
        x = document.root.children[0]
        assert x.reference == OntologicalReference(
            "2.16.840.1.113883.6.96", "195967001")

    def test_no_reference_extractor(self):
        document = parse_document(SAMPLE,
                                  reference_extractor=no_reference_extractor)
        assert document.code_nodes() == []

    def test_text_and_tail(self):
        document = parse_document(SAMPLE)
        y = document.root.children[1]
        assert y.text == "hello "
        assert y.children[0].text == "bold"
        assert y.children[0].tail == " tail"

    def test_whitespace_only_text_dropped_by_default(self):
        document = parse_document("<a>\n  <b/>\n</a>")
        assert document.root.text == ""

    def test_keep_whitespace_option(self):
        parser = XMLParser(keep_whitespace_text=True)
        document = parser.parse("<a>\n  <b/>\n</a>")
        assert document.root.text == "\n  "

    def test_malformed_raises(self):
        with pytest.raises(XMLParseError):
            parse_document("<a><b></a>")
        with pytest.raises(XMLParseError):
            parse_document("not xml at all")

    def test_entities_decoded(self):
        document = parse_document("<a>&amp;&lt;&gt;</a>")
        assert document.root.text == "&<>"

    def test_parse_fragment(self):
        node = XMLParser().parse_fragment("<frag><inner/></frag>")
        assert node.tag == "frag"
        assert node.children[0].tag == "inner"

    def test_extractor_requires_both_attributes(self):
        assert cda_reference_extractor("x", {"code": "1"}) is None
        assert cda_reference_extractor("x", {"codeSystem": "1"}) is None
        assert cda_reference_extractor(
            "x", {"code": "1", "codeSystem": "2"}) is not None


class TestSerializer:
    def test_roundtrip_compact(self):
        document = parse_document(SAMPLE)
        text = serialize(document)
        reparsed = parse_document(text)
        assert self.shape(reparsed.root) == self.shape(document.root)

    def test_roundtrip_pretty(self):
        document = parse_document(SAMPLE)
        text = serialize(document, indent="  ")
        reparsed = parse_document(text)
        assert self.shape(reparsed.root) == self.shape(document.root)

    def shape(self, node):
        return (node.tag, tuple(node.attributes.items()), node.text,
                node.tail, tuple(self.shape(child)
                                 for child in node.children))

    def test_escaping(self):
        assert escape_text('a<b>&c') == "a&lt;b&gt;&amp;c"
        assert escape_attribute('say "hi" & <go>') == \
            "say &quot;hi&quot; &amp; &lt;go&gt;"

    def test_escaped_content_roundtrip(self):
        document = parse_document("<a t='&quot;x&amp;y&quot;'>1 &lt; 2</a>")
        text = serialize(document)
        reparsed = parse_document(text)
        assert reparsed.root.text == "1 < 2"
        assert reparsed.root.attributes["t"] == '"x&y"'

    def test_self_closing_empty_elements(self):
        assert serialize(parse_document("<a><b/></a>"),
                         xml_declaration=False) == "<a><b/></a>"

    def test_declaration_toggle(self):
        text = serialize(parse_document("<a/>"), xml_declaration=False)
        assert not text.startswith("<?xml")

    def test_mixed_content_not_indented(self):
        document = parse_document("<a>x<b/>y</a>")
        text = XMLSerializer(indent="  ",
                             xml_declaration=False).serialize(document)
        assert text == "<a>x<b/>y</a>"
