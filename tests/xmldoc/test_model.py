"""Unit tests for the labeled-tree XML model (Section III semantics)."""

import pytest

from repro.xmldoc.model import (Corpus, DEFAULT_TEXT_POLICY,
                                OntologicalReference, TextPolicy,
                                XMLDocument, XMLNode)


def build_tree():
    root = XMLNode("root")
    section = root.add("section", {"id": "s1"})
    section.add("title", text="Medications")
    entry = section.add("entry")
    entry.add("value", {"displayName": "Asthma"},
              reference=OntologicalReference("sys", "195967001"))
    return root


class TestXMLNode:
    def test_requires_tag(self):
        with pytest.raises(ValueError):
            XMLNode("")

    def test_append_sets_parent(self):
        root = XMLNode("a")
        child = root.add("b")
        assert child.parent is root
        assert root.children == [child]

    def test_append_rejects_attached_node(self):
        root = XMLNode("a")
        child = root.add("b")
        other = XMLNode("c")
        with pytest.raises(ValueError):
            other.append(child)

    def test_detach(self):
        root = XMLNode("a")
        child = root.add("b")
        child.detach()
        assert child.parent is None
        assert root.children == []

    def test_iter_is_document_order(self):
        root = build_tree()
        tags = [node.tag for node in root.iter()]
        assert tags == ["root", "section", "title", "entry", "value"]

    def test_descendants_excludes_self(self):
        root = build_tree()
        assert all(node is not root for node in root.descendants())
        assert sum(1 for _ in root.descendants()) == 4

    def test_ancestors(self):
        root = build_tree()
        value = root.find("value")
        assert [node.tag for node in value.ancestors()] == \
            ["entry", "section", "root"]

    def test_root_and_depth(self):
        root = build_tree()
        value = root.find("value")
        assert value.root() is root
        assert value.depth() == 3
        assert root.depth() == 0

    def test_find_returns_first_match(self):
        root = build_tree()
        assert root.find("section").attributes["id"] == "s1"
        assert root.find("missing") is None

    def test_findall(self):
        root = build_tree()
        assert len(root.findall("entry")) == 1

    def test_child_index(self):
        root = build_tree()
        section = root.find("section")
        assert section.child_index() == 0
        assert section.children[1].child_index() == 1

    def test_is_code_node(self):
        root = build_tree()
        assert not root.is_code_node
        assert root.find("value").is_code_node


class TestTextualDescription:
    def test_includes_tag_attributes_and_text(self):
        node = XMLNode("title", {"lang": "en"}, text="Medications")
        assert node.textual_description() == "title lang en Medications"

    def test_excluded_attribute_keeps_name_drops_value(self):
        node = XMLNode("code", {"code": "1234", "displayName": "Asthma"})
        description = node.textual_description()
        assert "1234" not in description
        assert "Asthma" in description
        assert "code" in description  # attribute names stay

    def test_custom_policy(self):
        policy = TextPolicy(excluded_attributes=("displayName",))
        node = XMLNode("code", {"displayName": "Asthma"})
        assert "Asthma" not in node.textual_description(policy)

    def test_policy_pairs(self):
        policy = TextPolicy(excluded_pairs=(("code", "value"),))
        assert not policy.includes("code", "value")
        assert policy.includes("other", "value")

    def test_policy_predicate(self):
        policy = TextPolicy(predicate=lambda tag, attr: attr != "x")
        assert not policy.includes("t", "x")
        assert policy.includes("t", "y")

    def test_tail_text_contributes_to_parent(self):
        root = XMLNode("text")
        child = root.add("content", text="Theophylline")
        child.tail = "20 mg every other day"
        assert "20 mg every other day" in root.textual_description()
        assert "Theophylline" not in root.textual_description()

    def test_subtree_text(self):
        root = build_tree()
        text = root.subtree_text()
        assert "Medications" in text
        assert "Asthma" in text


class TestDocumentAndCorpus:
    def test_node_count(self):
        document = XMLDocument(doc_id=0, root=build_tree())
        assert document.node_count() == 5

    def test_code_nodes(self):
        document = XMLDocument(doc_id=0, root=build_tree())
        assert [node.tag for node in document.code_nodes()] == ["value"]

    def test_referenced_systems(self):
        document = XMLDocument(doc_id=0, root=build_tree())
        assert document.referenced_systems() == {"sys"}

    def test_corpus_rejects_duplicate_ids(self):
        corpus = Corpus([XMLDocument(doc_id=1, root=build_tree())])
        with pytest.raises(ValueError):
            corpus.add(XMLDocument(doc_id=1, root=build_tree()))

    def test_corpus_iterates_in_id_order(self):
        corpus = Corpus([XMLDocument(doc_id=5, root=build_tree()),
                         XMLDocument(doc_id=2, root=build_tree())])
        assert [document.doc_id for document in corpus] == [2, 5]

    def test_corpus_get_unknown(self):
        with pytest.raises(KeyError):
            Corpus().get(42)

    def test_corpus_contains_and_len(self):
        corpus = Corpus([XMLDocument(doc_id=3, root=build_tree())])
        assert 3 in corpus
        assert 4 not in corpus
        assert len(corpus) == 1
        assert corpus.total_nodes() == 5

    def test_default_policy_excludes_cda_noise(self):
        for attribute in ("code", "codeSystem", "root", "extension"):
            assert not DEFAULT_TEXT_POLICY.includes("any", attribute)
        assert DEFAULT_TEXT_POLICY.includes("any", "displayName")
