"""Shared fixtures: ontologies, corpora and engines built once per
session (they are deterministic and read-only across tests)."""

from __future__ import annotations

import pytest

from repro import build_engines
from repro.cda import build_cda_corpus, build_figure1_document
from repro.emr import generate_cardiac_emr
from repro.ontology import TerminologyService, build_core_ontology, \
    build_synthetic_snomed
from repro.xmldoc import Corpus


@pytest.fixture(scope="session")
def core_ontology():
    """The curated clinical core (every concept the paper names)."""
    return build_core_ontology()


@pytest.fixture(scope="session")
def synthetic_ontology():
    """The full synthetic SNOMED at default scale."""
    return build_synthetic_snomed()


@pytest.fixture(scope="session")
def terminology(synthetic_ontology):
    return TerminologyService([synthetic_ontology])


@pytest.fixture(scope="session")
def figure1_document():
    return build_figure1_document()


@pytest.fixture(scope="session")
def figure1_corpus(figure1_document):
    return Corpus([figure1_document])


@pytest.fixture(scope="session")
def emr_database(synthetic_ontology):
    return generate_cardiac_emr(n_patients=12, seed=11,
                                ontology=synthetic_ontology)


@pytest.fixture(scope="session")
def cda_corpus(emr_database, terminology):
    corpus, _ = build_cda_corpus(emr_database, terminology)
    return corpus


@pytest.fixture(scope="session")
def engines(cda_corpus, synthetic_ontology):
    """One engine per strategy over the shared test corpus."""
    return build_engines(cda_corpus, synthetic_ontology)


@pytest.fixture(scope="session")
def figure1_engines(figure1_corpus, core_ontology):
    """All four strategies over the paper's Figure 1 document."""
    return build_engines(figure1_corpus, core_ontology)
