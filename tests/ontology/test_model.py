"""Unit tests for the concept-graph ontology model."""

import pytest

from repro.ontology.model import (Concept, IS_A, Ontology, OntologyError,
                                  Relationship)


@pytest.fixture
def ontology():
    onto = Ontology("sys", "Test Ontology")
    for code, term in (("1", "Disorder"), ("2", "Heart disorder"),
                       ("3", "Arrhythmia"), ("4", "Fibrillation"),
                       ("5", "Heart"), ("6", "Amiodarone")):
        onto.new_concept(code, term)
    onto.add_is_a("2", "1")
    onto.add_is_a("3", "2")
    onto.add_is_a("4", "3")
    onto.add_relationship("2", "finding-site-of", "5")
    onto.add_relationship("6", "may-treat", "3")
    return onto


class TestConcept:
    def test_terms_order(self):
        concept = Concept("1", "Asthma", ("bronchial asthma",), "disorder")
        assert concept.terms == ("Asthma", "bronchial asthma")

    def test_description_text(self):
        concept = Concept("1", "Asthma", ("wheeze",), "disorder")
        assert concept.description_text() == "Asthma wheeze disorder"


class TestConstruction:
    def test_duplicate_concept(self, ontology):
        with pytest.raises(OntologyError):
            ontology.new_concept("1", "Again")

    def test_unknown_endpoint(self, ontology):
        with pytest.raises(OntologyError):
            ontology.add_is_a("1", "99")

    def test_self_loop(self, ontology):
        with pytest.raises(OntologyError):
            ontology.add_relationship("1", "related", "1")

    def test_duplicate_edge(self, ontology):
        with pytest.raises(OntologyError):
            ontology.add_is_a("2", "1")

    def test_cycle_prevention(self, ontology):
        with pytest.raises(OntologyError):
            ontology.add_is_a("1", "4")

    def test_has_relationship(self, ontology):
        assert ontology.has_relationship("6", "may-treat", "3")
        assert not ontology.has_relationship("6", "may-treat", "4")


class TestTaxonomy:
    def test_parents_children(self, ontology):
        assert ontology.parents("3") == ["2"]
        assert ontology.children("2") == ["3"]

    def test_subclass_count(self, ontology):
        assert ontology.subclass_count("1") == 1
        assert ontology.subclass_count("4") == 0

    def test_ancestors_descendants(self, ontology):
        assert ontology.ancestors("4") == {"3", "2", "1"}
        assert ontology.descendants("1") == {"2", "3", "4"}
        assert ontology.descendants("4") == set()

    def test_is_subsumed_by(self, ontology):
        assert ontology.is_subsumed_by("4", "1")
        assert ontology.is_subsumed_by("4", "4")  # reflexive
        assert not ontology.is_subsumed_by("1", "4")

    def test_roots(self, ontology):
        assert set(ontology.roots()) == {"1", "5", "6"}

    def test_unknown_concept_raises(self, ontology):
        with pytest.raises(OntologyError):
            ontology.parents("99")


class TestAttributes:
    def test_outgoing_filtered(self, ontology):
        assert [e.destination for e in ontology.outgoing("2")] == ["5"]
        assert ontology.outgoing("2", "may-treat") == []

    def test_incoming(self, ontology):
        assert [e.source for e in ontology.incoming("5")] == ["2"]

    def test_role_in_degree(self, ontology):
        assert ontology.role_in_degree("5", "finding-site-of") == 1
        assert ontology.role_in_degree("5", "may-treat") == 0

    def test_relationship_types(self, ontology):
        assert ontology.relationship_types() == \
            {IS_A, "finding-site-of", "may-treat"}


class TestUndirectedView:
    def test_neighbors_cover_all_edge_kinds(self, ontology):
        assert set(ontology.neighbors("2")) == {"1", "3", "5"}
        assert set(ontology.neighbors("3")) == {"2", "4", "6"}
        assert set(ontology.neighbors("5")) == {"2"}

    def test_neighbors_deduplicated(self, ontology):
        ontology.add_relationship("3", "associated-with", "2")
        assert ontology.neighbors("3").count("2") == 1


class TestIntegrity:
    def test_validate_passes(self, ontology):
        ontology.validate()

    def test_stats(self, ontology):
        stats = ontology.stats()
        assert stats["concepts"] == 6
        assert stats["is_a_edges"] == 3
        assert stats["attribute_edges"] == 2
        assert stats["roots"] == 3

    def test_relationship_value_object(self):
        assert Relationship("a", "r", "b") == Relationship("a", "r", "b")
        assert Relationship("a", "r", "b") != Relationship("a", "r", "c")
