"""Unit tests for the EL description-logic view (Section IV-C)."""

import pytest

from repro.ontology.description_logic import (AtomicConcept, Conjunction,
                                              DLView,
                                              ExistentialRestriction,
                                              Subsumption, TopConcept,
                                              apply_axiom, conjunction_of,
                                              existential_code,
                                              existential_name,
                                              ontology_axioms)
from repro.ontology.model import Ontology, OntologyError
from repro.ontology.snomed import (ASTHMA, ASTHMA_ATTACK,
                                   BRONCHIAL_STRUCTURE, FINDING_SITE_OF,
                                   build_core_ontology)


class TestExpressions:
    def test_conjunction_requires_two(self):
        with pytest.raises(ValueError):
            Conjunction((AtomicConcept("a"),))

    def test_conjunction_of_degenerate_cases(self):
        assert isinstance(conjunction_of(()), TopConcept)
        single = conjunction_of((AtomicConcept("a"),))
        assert single == AtomicConcept("a")
        full = conjunction_of((AtomicConcept("a"), AtomicConcept("b")))
        assert isinstance(full, Conjunction)

    def test_str_forms(self):
        restriction = ExistentialRestriction("r", AtomicConcept("C"))
        assert "exists r" in str(restriction)
        axiom = Subsumption(AtomicConcept("A"), AtomicConcept("B"))
        assert "subClassOf" in str(axiom)


class TestAxiomBridge:
    def test_paper_example_axiom(self):
        """Asthma Attack ⊑ Asthma ⊓ ∃finding-site-of.Bronchial Structure"""
        ontology = build_core_ontology()
        axioms = {str(a.subclass): a for a in ontology_axioms(ontology)}
        axiom = axioms[ASTHMA_ATTACK]
        operands = axiom.superclass.operands
        assert AtomicConcept(ASTHMA) in operands
        assert ExistentialRestriction(
            FINDING_SITE_OF, AtomicConcept(BRONCHIAL_STRUCTURE)) in operands

    def test_apply_axiom_roundtrip(self):
        source = Ontology("s")
        for code in "abc":
            source.new_concept(code, code.upper())
        source.add_is_a("a", "b")
        source.add_relationship("a", "part-of", "c")

        target = Ontology("s")
        for code in "abc":
            target.new_concept(code, code.upper())
        for axiom in ontology_axioms(source):
            apply_axiom(target, axiom)
        assert target.parents("a") == ["b"]
        assert [e.destination for e in target.outgoing("a")] == ["c"]

    def test_apply_axiom_rejects_complex_lhs(self):
        ontology = Ontology("s")
        ontology.new_concept("a", "A")
        axiom = Subsumption(TopConcept(), AtomicConcept("a"))
        with pytest.raises(OntologyError):
            apply_axiom(ontology, axiom)

    def test_apply_axiom_rejects_nested_filler(self):
        ontology = Ontology("s")
        ontology.new_concept("a", "A")
        nested = ExistentialRestriction(
            "r", ExistentialRestriction("q", AtomicConcept("a")))
        with pytest.raises(OntologyError):
            apply_axiom(ontology, Subsumption(AtomicConcept("a"), nested))

    def test_apply_axiom_top_is_noop(self):
        ontology = Ontology("s")
        ontology.new_concept("a", "A")
        apply_axiom(ontology, Subsumption(AtomicConcept("a"), TopConcept()))
        assert ontology.parents("a") == []


class TestNames:
    def test_existential_code_format(self):
        assert existential_code("finding-site-of", "955009") == \
            "exists:finding-site-of:955009"

    def test_existential_name_single_token(self):
        name = existential_name("finding-site-of", "Bronchial structure")
        assert name == "Exists_finding_site_of_Bronchial_structure"
        assert " " not in name


class TestDLView:
    @pytest.fixture(scope="class")
    def view(self):
        return DLView(build_core_ontology())

    def test_concepts_carried_over(self, view):
        assert ASTHMA in view
        assert not view.node(ASTHMA).is_existential

    def test_existential_nodes_created(self, view):
        code = existential_code(FINDING_SITE_OF, BRONCHIAL_STRUCTURE)
        assert code in view
        node = view.node(code)
        assert node.is_existential
        assert node.role == FINDING_SITE_OF
        assert node.filler == BRONCHIAL_STRUCTURE

    def test_subclass_edge_into_restriction(self, view):
        code = existential_code(FINDING_SITE_OF, BRONCHIAL_STRUCTURE)
        assert code in view.parents(ASTHMA)
        assert ASTHMA in view.children(code)

    def test_dotted_link_symmetric(self, view):
        code = existential_code(FINDING_SITE_OF, BRONCHIAL_STRUCTURE)
        assert BRONCHIAL_STRUCTURE in view.dotted(code)
        assert code in view.dotted(BRONCHIAL_STRUCTURE)

    def test_restriction_in_degree(self, view):
        code = existential_code(FINDING_SITE_OF, BRONCHIAL_STRUCTURE)
        ontology = build_core_ontology()
        assert view.subclass_count(code) == \
            ontology.role_in_degree(BRONCHIAL_STRUCTURE, FINDING_SITE_OF)

    def test_one_node_per_distinct_restriction(self, view):
        codes = [node.code for node in view.existential_nodes()]
        assert len(codes) == len(set(codes))

    def test_stats_consistent(self, view):
        stats = view.stats()
        assert stats["nodes"] == stats["concept_nodes"] + \
            stats["existential_nodes"]
        assert stats["existential_nodes"] == stats["dotted_links"]

    def test_unknown_node(self, view):
        with pytest.raises(OntologyError):
            view.node("nope")
