"""Edge cases of ``TerminologyService.match_in_text``.

The scan promises longest-match-first, no-overlap selection over up to
``max_phrase_words``-token windows. These tests pin the boundaries the
narrative query mapper leans on: apostrophe tokens, adjacent
overlapping candidate phrases, and the window-width limits.
"""

import pytest

from repro.ontology.api import TerminologyService
from repro.ontology.indexes import build_ontology_indexes
from repro.ontology.model import Concept, Ontology
from repro.storage.memory_store import MemoryStore


def _ontology() -> Ontology:
    ontology = Ontology("test.match", "match fixture")
    ontology.add_concept(Concept("1", "Cardiac arrest"))
    ontology.add_concept(Concept("2", "Arrest"))
    ontology.add_concept(Concept("3", "Arrest warrant"))
    ontology.add_concept(Concept("4", "Patient's condition"))
    ontology.add_concept(Concept("5",
                                 "Severe acute respiratory syndrome"))
    ontology.add_concept(
        Concept("6", "Chronic obstructive pulmonary disease disorder"))
    return ontology


@pytest.fixture(params=["graph", "index"])
def service(request):
    if request.param == "graph":
        return TerminologyService([_ontology()])
    built = TerminologyService()
    built.register_indexes(build_ontology_indexes(_ontology(),
                                                  MemoryStore()))
    return built


class TestLongestMatchFirst:
    def test_longer_phrase_beats_nested_term(self, service):
        # "arrest" (code 2) is a strict sub-phrase of "cardiac arrest"
        # (code 1); the scan must take the widest window first.
        matches = service.match_in_text("status: cardiac arrest today")
        assert [(p, c.code) for p, c in matches] == \
            [("cardiac arrest", "1")]

    def test_adjacent_overlapping_candidates_do_not_overlap(self, service):
        # "cardiac arrest" and "arrest warrant" both cover the middle
        # token; the leftmost longest match wins and the loser's
        # remainder ("warrant") is not itself a term.
        matches = service.match_in_text("cardiac arrest warrant")
        assert [(p, c.code) for p, c in matches] == \
            [("cardiac arrest", "1")]

    def test_overlap_loser_still_matches_later_occurrence(self, service):
        matches = service.match_in_text(
            "cardiac arrest then an arrest warrant was issued")
        assert [(p, c.code) for p, c in matches] == \
            [("cardiac arrest", "1"), ("arrest warrant", "3")]

    def test_single_word_term_matches_alone(self, service):
        matches = service.match_in_text("an arrest occurred")
        assert [(p, c.code) for p, c in matches] == [("arrest", "2")]


class TestApostropheTokens:
    def test_possessive_stays_one_token(self, service):
        # The tokenizer keeps "patient's" as one token; the term
        # "Patient's condition" must match it, and a bare "patients"
        # must not.
        matches = service.match_in_text("the patient's condition worsened")
        assert [(p, c.code) for p, c in matches] == \
            [("patient's condition", "4")]
        assert service.match_in_text("the patients condition") == []


class TestWindowBoundaries:
    def test_match_at_max_phrase_words(self, service):
        matches = service.match_in_text(
            "severe acute respiratory syndrome confirmed",
            max_phrase_words=4)
        assert [(p, c.code) for p, c in matches] == \
            [("severe acute respiratory syndrome", "5")]

    def test_term_wider_than_window_is_not_matched(self, service):
        # A five-token term cannot be found through a four-token
        # window (no partial credit, no crash).
        text = "chronic obstructive pulmonary disease disorder noted"
        assert service.match_in_text(text, max_phrase_words=4) == []
        matches = service.match_in_text(text, max_phrase_words=5)
        assert [(p, c.code) for p, c in matches] == \
            [("chronic obstructive pulmonary disease disorder", "6")]

    def test_window_clamped_at_text_end(self, service):
        # Two tokens left but a four-word window requested: the scan
        # must clamp, not index past the end.
        matches = service.match_in_text("cardiac arrest",
                                        max_phrase_words=4)
        assert [(p, c.code) for p, c in matches] == \
            [("cardiac arrest", "1")]

    def test_match_ending_exactly_at_last_token(self, service):
        matches = service.match_in_text(
            "found in severe acute respiratory syndrome",
            max_phrase_words=4)
        assert [(p, c.code) for p, c in matches] == \
            [("severe acute respiratory syndrome", "5")]

    def test_empty_and_stopword_only_text(self, service):
        assert service.match_in_text("") == []
        assert service.match_in_text("of the and") == []
