"""TerminologyService as a facade over the index layer.

Covers every fallback path explicitly: unknown names, ambiguous
synonyms, xref misses, and the graph answering when no index layer is
registered (or when the index layer lacks a payload).
"""

import pytest

from repro.ontology.api import TerminologyService
from repro.ontology.indexes import build_ontology_indexes
from repro.ontology.model import Concept, Ontology, OntologyError
from repro.ontology.snomed import (ASTHMA, SNOMED_SYSTEM_CODE,
                                   build_core_ontology)
from repro.storage.memory_store import MemoryStore
from repro.xmldoc.model import OntologicalReference


@pytest.fixture(scope="module")
def index_backed():
    """A service whose only system is index-backed (no graph at all)."""
    indexes = build_ontology_indexes(build_core_ontology(),
                                     MemoryStore())
    service = TerminologyService()
    service.register_indexes(indexes)
    return service


@pytest.fixture(scope="module")
def dual_backed():
    """The same system registered both ways (index first, graph
    fallback)."""
    ontology = build_core_ontology()
    service = TerminologyService([ontology])
    service.register_indexes(
        build_ontology_indexes(ontology, MemoryStore()))
    return service


def _ambiguous_ontology() -> Ontology:
    ontology = Ontology("test.system", "ambiguity fixture")
    ontology.add_concept(Concept("1", "Cold", ("common cold",),
                                 "disorder"))
    ontology.add_concept(Concept("2", "Cold sensation",
                                 ("cold",), "finding"))
    return ontology


class TestIndexBackedResolution:
    def test_lookup_never_touches_graph(self, index_backed):
        # No graph is registered at all: a hit proves the index layer
        # answered alone.
        with pytest.raises(OntologyError):
            index_backed.ontology(SNOMED_SYSTEM_CODE)
        concepts = index_backed.lookup_term("Asthma")
        assert [c.code for c in concepts] == [ASTHMA]

    def test_unknown_name_returns_empty(self, index_backed):
        assert index_backed.lookup_term("zebra stampede") == []

    def test_resolve_and_miss(self, index_backed):
        hit = index_backed.resolve(
            OntologicalReference(SNOMED_SYSTEM_CODE, ASTHMA))
        assert hit.code == ASTHMA
        assert index_backed.resolve(
            OntologicalReference(SNOMED_SYSTEM_CODE, "000")) is None
        assert index_backed.resolve(
            OntologicalReference("unregistered", ASTHMA)) is None

    def test_concept_for_code_errors(self, index_backed):
        with pytest.raises(OntologyError):
            index_backed.concept_for_code("unregistered", ASTHMA)
        with pytest.raises(OntologyError):
            index_backed.concept_for_code(SNOMED_SYSTEM_CODE, "000")

    def test_xref_miss_is_empty_not_error(self, index_backed):
        indexes = index_backed.indexes(SNOMED_SYSTEM_CODE)
        assert indexes.xrefs.forward("000") == []
        assert indexes.xrefs.reverse("no.such.system", "X00") == []

    def test_vocabulary_from_token_keys(self, index_backed):
        vocabulary = index_backed.vocabulary()
        assert "asthma" in vocabulary
        assert "theophylline" in vocabulary

    def test_membership_and_systems(self, index_backed):
        assert SNOMED_SYSTEM_CODE in index_backed
        assert index_backed.systems() == [SNOMED_SYSTEM_CODE]


class TestAmbiguousSynonym:
    def test_all_matches_returned_preferred_first(self):
        service = TerminologyService()
        service.register_indexes(
            build_ontology_indexes(_ambiguous_ontology(),
                                   MemoryStore()))
        matches = service.lookup_term("cold")
        # Ambiguity is surfaced, not swallowed: both concepts come
        # back, the preferred-term match ("Cold") before the synonym.
        assert [c.code for c in matches] == ["1", "2"]

    def test_graph_path_also_returns_all(self):
        service = TerminologyService([_ambiguous_ontology()])
        assert {c.code for c in service.lookup_term("cold")} == {"1", "2"}


class TestGraphFallback:
    def test_index_layer_absent_falls_back_to_graph(self):
        service = TerminologyService([build_core_ontology()])
        assert service.indexes(SNOMED_SYSTEM_CODE) is None
        concepts = service.lookup_term("Asthma")
        assert [c.code for c in concepts] == [ASTHMA]
        assert service.resolve(
            OntologicalReference(SNOMED_SYSTEM_CODE, ASTHMA)) is not None

    def test_dual_backed_prefers_index(self, dual_backed):
        assert dual_backed.lookup_term("Asthma")[0].code == ASTHMA
        assert dual_backed.systems() == [SNOMED_SYSTEM_CODE]

    def test_missing_payload_falls_back_to_graph(self):
        ontology = build_core_ontology()
        store = MemoryStore()
        build_ontology_indexes(ontology, store)
        # Simulate an index whose payload row was lost: the facade
        # must fall through to the graph representation.
        store._metadata.pop("onto.concept:" + ASTHMA)
        service = TerminologyService([ontology])
        from repro.ontology.indexes import OntologyIndexes
        service.register_indexes(OntologyIndexes(store))
        concept = service.concept_for_code(SNOMED_SYSTEM_CODE, ASTHMA)
        assert concept.preferred_term == "Asthma"

    def test_duplicate_index_registration_rejected(self, dual_backed):
        with pytest.raises(OntologyError):
            dual_backed.register_indexes(
                build_ontology_indexes(build_core_ontology(),
                                       MemoryStore()))


class TestResolveSpan:
    def test_each_operation_emits_its_own_span(self):
        # Code resolution and term lookup are distinct operations and
        # must not share a span name, or term-lookup latency gets
        # misattributed to code resolution in profiles.
        from repro.core.obs.tracer import Tracer
        tracer = Tracer()
        service = TerminologyService([build_core_ontology()],
                                     tracer=tracer)
        service.resolve(OntologicalReference(SNOMED_SYSTEM_CODE,
                                             ASTHMA))
        service.lookup_term("asthma")
        names = [span.name for span in tracer.finished()]
        assert names.count("ontology.resolve") == 1
        assert names.count("ontology.lookup_term") == 1

    def test_lookup_term_span_attributes(self):
        from repro.core.obs.tracer import Tracer
        tracer = Tracer()
        service = TerminologyService([build_core_ontology()],
                                     tracer=tracer)
        service.lookup_term("Asthma")
        span = [s for s in tracer.finished()
                if s.name == "ontology.lookup_term"][0]
        assert span.attributes["term"] == "asthma"
        assert span.attributes["hits"] == 1


class TestSharedNormalization:
    """Hyphenated clinical terms resolve identically on both paths.

    The query side tokenizes "X-ray" to ["x", "ray"]; the index/graph
    side must file terms under the same normalization or hyphenated
    ontology terms become unreachable from narrative text.
    """

    def _hyphen_ontology(self) -> Ontology:
        ontology = Ontology("test.hyphen", "hyphen fixture")
        ontology.add_concept(Concept("10", "X-ray", ("radiograph",),
                                     "procedure"))
        ontology.add_concept(Concept("20", "Super-morbidly obese",
                                     ("super morbid obesity",),
                                     "finding"))
        return ontology

    def test_normalizations_are_the_same_function(self):
        from repro.ir.tokenizer import normalize_term
        from repro.ontology import indexes
        assert indexes.normalize_term is normalize_term
        assert TerminologyService._normalize is normalize_term

    @pytest.mark.parametrize("query", ["X-ray", "x-ray", "x ray",
                                       "X-Ray"])
    def test_hyphenated_term_resolves_via_index(self, query):
        service = TerminologyService()
        service.register_indexes(
            build_ontology_indexes(self._hyphen_ontology(),
                                   MemoryStore()))
        assert [c.code for c in service.lookup_term(query)] == ["10"]

    @pytest.mark.parametrize("query", ["X-ray", "x-ray", "x ray",
                                       "X-Ray"])
    def test_hyphenated_term_resolves_via_graph(self, query):
        service = TerminologyService([self._hyphen_ontology()])
        assert [c.code for c in service.lookup_term(query)] == ["10"]

    def test_multiword_hyphenated_term_both_paths(self):
        indexed = TerminologyService()
        indexed.register_indexes(
            build_ontology_indexes(self._hyphen_ontology(),
                                   MemoryStore()))
        graphed = TerminologyService([self._hyphen_ontology()])
        for service in (indexed, graphed):
            hits = service.lookup_term("super-morbidly obese")
            assert [c.code for c in hits] == ["20"]
            # And the un-hyphenated spelling hits the same bucket.
            assert [c.code for c in
                    service.lookup_term("super morbidly obese")] == ["20"]
