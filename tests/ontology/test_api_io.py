"""Unit tests for the terminology service and flat-file persistence."""

import pytest

from repro.ontology.api import TerminologyService
from repro.ontology.io import load_ontology, save_ontology
from repro.ontology.model import Ontology, OntologyError
from repro.ontology.snomed import (ASTHMA, SNOMED_SYSTEM_CODE,
                                   build_core_ontology)
from repro.xmldoc.model import OntologicalReference


@pytest.fixture(scope="module")
def service():
    return TerminologyService([build_core_ontology()])


class TestTerminologyService:
    def test_register_duplicate_system(self):
        ontology = build_core_ontology()
        service = TerminologyService([ontology])
        with pytest.raises(OntologyError):
            service.register(ontology)

    def test_lookup_exact_term(self, service):
        concepts = service.lookup_term("Asthma")
        assert [c.code for c in concepts] == [ASTHMA]

    def test_lookup_is_case_insensitive(self, service):
        assert service.lookup_term("aSTHma")
        assert service.lookup_term("bronchial ASTHMA")  # synonym

    def test_lookup_unknown(self, service):
        assert service.lookup_term("zebra stampede") == []
        assert service.lookup_term("   ") == []

    def test_concept_for_code(self, service):
        concept = service.concept_for_code(SNOMED_SYSTEM_CODE, ASTHMA)
        assert concept.preferred_term == "Asthma"

    def test_resolve_reference(self, service):
        reference = OntologicalReference(SNOMED_SYSTEM_CODE, ASTHMA)
        assert service.resolve(reference).code == ASTHMA

    def test_resolve_unknown_system_or_code(self, service):
        assert service.resolve(OntologicalReference("other", ASTHMA)) is None
        assert service.resolve(
            OntologicalReference(SNOMED_SYSTEM_CODE, "000")) is None

    def test_match_in_text_longest_first(self, service):
        matches = service.match_in_text(
            "history of cardiac arrest and asthma attack today")
        phrases = [phrase for phrase, _ in matches]
        assert "cardiac arrest" in phrases
        assert "asthma attack" in phrases
        # "asthma" alone must not be reported inside "asthma attack"
        assert "asthma" not in phrases

    def test_match_in_text_no_overlap(self, service):
        matches = service.match_in_text("asthma asthma")
        assert len(matches) == 2

    def test_vocabulary_contains_terms(self, service):
        vocabulary = service.vocabulary()
        assert "asthma" in vocabulary
        assert "theophylline" in vocabulary

    def test_systems_listing(self, service):
        assert service.systems() == [SNOMED_SYSTEM_CODE]
        assert SNOMED_SYSTEM_CODE in service
        with pytest.raises(OntologyError):
            service.ontology("missing")


class TestFlatFiles:
    def test_roundtrip(self, tmp_path):
        original = build_core_ontology()
        save_ontology(original, str(tmp_path))
        loaded = load_ontology(str(tmp_path))
        assert loaded.system_code == original.system_code
        assert loaded.name == original.name
        assert sorted(loaded.concept_codes()) == \
            sorted(original.concept_codes())
        assert loaded.stats() == original.stats()
        asthma = loaded.concept(ASTHMA)
        assert asthma.preferred_term == "Asthma"
        assert asthma.synonyms == original.concept(ASTHMA).synonyms

    def test_load_missing_directory(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_ontology(str(tmp_path / "nope"))

    def test_malformed_column_count(self, tmp_path):
        save_ontology(build_core_ontology(), str(tmp_path))
        path = tmp_path / "relationships.tsv"
        path.write_text(path.read_text() + "only-one-column\n")
        with pytest.raises(OntologyError):
            load_ontology(str(tmp_path))

    def test_description_for_unknown_concept(self, tmp_path):
        save_ontology(build_core_ontology(), str(tmp_path))
        path = tmp_path / "descriptions.tsv"
        path.write_text(path.read_text() + "999\tP\tGhost\n")
        with pytest.raises(OntologyError):
            load_ontology(str(tmp_path))

    def test_terms_with_spaces_survive(self, tmp_path):
        ontology = Ontology("s")
        ontology.new_concept("1", "Disorder of bronchus",
                             ("bronchial disorder",), "disorder")
        save_ontology(ontology, str(tmp_path))
        loaded = load_ontology(str(tmp_path))
        assert loaded.concept("1").preferred_term == "Disorder of bronchus"
