"""Unit tests for the classic semantic-similarity measures."""

import pytest

from repro.ontology import snomed
from repro.ontology.model import OntologyError
from repro.ontology.similarity import SimilarityMeasures
from repro.ontology.snomed import build_core_ontology


@pytest.fixture(scope="module")
def measures():
    return SimilarityMeasures(build_core_ontology())


class TestPathDistance:
    def test_identity_is_zero(self, measures):
        assert measures.path_distance(snomed.ASTHMA, snomed.ASTHMA) == 0

    def test_parent_child_is_one(self, measures):
        assert measures.path_distance(snomed.ASTHMA,
                                      snomed.DISORDER_OF_BRONCHUS) == 1

    def test_siblings_are_two(self, measures):
        assert measures.path_distance(snomed.ASTHMA,
                                      snomed.BRONCHITIS) == 2

    def test_symmetric(self, measures):
        forward = measures.path_distance(snomed.ASTHMA,
                                         snomed.CARDIAC_ARREST)
        backward = measures.path_distance(snomed.CARDIAC_ARREST,
                                          snomed.ASTHMA)
        assert forward == backward

    def test_disconnected_is_none(self, measures):
        # Drug products and disorders live in different axes with no
        # shared is-a path in the curated core... verify via a concept
        # pair with no taxonomic connection at all.
        assert measures.path_distance(snomed.ASTHMA,
                                      snomed.THEOPHYLLINE) is None

    def test_unknown_concept(self, measures):
        with pytest.raises(OntologyError):
            measures.path_distance("000", snomed.ASTHMA)


class TestDepthAndSubsumers:
    def test_root_depth_zero(self, measures):
        assert measures.depth(snomed.CLINICAL_FINDING) == 0

    def test_depth_increases_downward(self, measures):
        assert measures.depth(snomed.ASTHMA) > \
            measures.depth(snomed.DISORDER_OF_BRONCHUS)

    def test_lowest_common_subsumer(self, measures):
        subsumer = measures.lowest_common_subsumer(snomed.ASTHMA,
                                                   snomed.BRONCHITIS)
        assert subsumer == snomed.DISORDER_OF_BRONCHUS

    def test_lcs_of_unrelated_pair(self, measures):
        assert measures.lowest_common_subsumer(
            snomed.ASTHMA, snomed.THEOPHYLLINE) is None


class TestSimilarityScales:
    PAIRS = ((snomed.ASTHMA, snomed.ASTHMA_ATTACK),      # parent/child
             (snomed.ASTHMA, snomed.BRONCHITIS),          # siblings
             (snomed.ASTHMA, snomed.CARDIAC_ARREST))      # distant

    def test_all_measures_in_unit_interval(self, measures):
        for first, second in self.PAIRS:
            for name, value in measures.all_similarities(first,
                                                         second).items():
                assert 0.0 <= value <= 1.0, name

    def test_identity_is_maximal(self, measures):
        values = measures.all_similarities(snomed.ASTHMA, snomed.ASTHMA)
        for name, value in values.items():
            if name == "resnik":
                # Resnik's self-similarity is IC(a) by definition.
                assert value == pytest.approx(
                    measures.information_content(snomed.ASTHMA))
            else:
                assert value == pytest.approx(1.0), name

    def test_closer_pairs_score_higher(self, measures):
        """Parent/child beats siblings beats cross-branch, for every
        measure."""
        for name in SimilarityMeasures.ALL_MEASURES:
            measure = getattr(measures, name)
            near = measure(*self.PAIRS[0])
            mid = measure(*self.PAIRS[1])
            far = measure(*self.PAIRS[2])
            assert near >= mid >= far, name

    def test_symmetry(self, measures):
        for name in SimilarityMeasures.ALL_MEASURES:
            measure = getattr(measures, name)
            assert measure(snomed.ASTHMA, snomed.BRONCHITIS) == \
                pytest.approx(measure(snomed.BRONCHITIS, snomed.ASTHMA))


class TestInformationContent:
    def test_leaves_are_maximal(self, measures):
        assert measures.information_content(snomed.ASTHMA_ATTACK) == \
            pytest.approx(1.0)

    def test_ic_decreases_up_the_taxonomy(self, measures):
        assert measures.information_content(snomed.ASTHMA) > \
            measures.information_content(snomed.DISORDER_OF_BRONCHUS)
        assert measures.information_content(snomed.DISORDER_OF_BRONCHUS) \
            > measures.information_content(snomed.CLINICAL_FINDING)

    def test_resnik_bounded_by_member_ic(self, measures):
        mica = measures.resnik(snomed.ASTHMA, snomed.BRONCHITIS)
        assert mica <= measures.information_content(snomed.ASTHMA)
        assert mica <= measures.information_content(snomed.BRONCHITIS)
