"""Unit tests for the persisted concept indexes (the index layer)."""

import pytest

from repro.ontology.indexes import (ONTOLOGY_INDEX_STRATEGIES,
                                    OntologyIndexes,
                                    build_ontology_indexes)
from repro.ontology.model import OntologyError
from repro.ontology.snomed import (ASTHMA, CLINICAL_FINDING,
                                   ICD10_SYSTEM_CODE, SNOMED_NAME,
                                   SNOMED_SYSTEM_CODE,
                                   SyntheticSnomedBuilder,
                                   build_core_ontology)
from repro.storage.interface import (CorruptIndexError,
                                     IncompatibleIndexError,
                                     canonical_dump)
from repro.storage.memory_store import MemoryStore
from repro.storage.mmap_store import MmapStore, atomic_mmap_build
from repro.storage.sqlite_store import SQLiteStore


@pytest.fixture(scope="module")
def core_indexes():
    return build_ontology_indexes(build_core_ontology(), MemoryStore())


class TestNameIndex:
    def test_exact_lookup_normalizes(self, core_indexes):
        assert core_indexes.names.lookup("aSTHma") == [(ASTHMA, 1.0)]

    def test_synonym_weight_below_preferred(self, core_indexes):
        matches = core_indexes.names.lookup("bronchial asthma")
        assert (ASTHMA, 0.5) in matches

    def test_unknown_and_empty_terms(self, core_indexes):
        assert core_indexes.names.lookup("zebra stampede") == []
        assert core_indexes.names.lookup("   ") == []

    def test_token_lookup(self, core_indexes):
        codes = [code for code, _weight
                 in core_indexes.names.lookup_token("asthma")]
        assert ASTHMA in codes
        assert len(codes) > 1  # the asthma subtypes share the token

    def test_token_lookup_rejects_phrases(self, core_indexes):
        assert core_indexes.names.lookup_token("asthma attack") == []


class TestXrefIndex:
    def test_forward(self, core_indexes):
        assert ((ICD10_SYSTEM_CODE, "J45")
                in core_indexes.xrefs.forward(ASTHMA))

    def test_reverse(self, core_indexes):
        assert core_indexes.xrefs.reverse(
            ICD10_SYSTEM_CODE, "J45") == [ASTHMA]

    def test_miss_is_empty(self, core_indexes):
        assert core_indexes.xrefs.forward("nonexistent") == []
        assert core_indexes.xrefs.reverse(ICD10_SYSTEM_CODE,
                                          "Z99") == []


class TestHierarchyIndex:
    def test_ancestors_with_depth(self, core_indexes):
        ancestors = core_indexes.hierarchy.ancestors(ASTHMA)
        assert CLINICAL_FINDING in ancestors
        assert ancestors[CLINICAL_FINDING] >= 1

    def test_descendants_mirror_ancestors(self, core_indexes):
        descendants = core_indexes.hierarchy.descendants(
            CLINICAL_FINDING)
        assert descendants[ASTHMA] == (
            core_indexes.hierarchy.ancestors(ASTHMA)[CLINICAL_FINDING])

    def test_is_subsumed_by(self, core_indexes):
        assert core_indexes.hierarchy.is_subsumed_by(ASTHMA,
                                                     CLINICAL_FINDING)
        assert core_indexes.hierarchy.is_subsumed_by(ASTHMA, ASTHMA)
        assert not core_indexes.hierarchy.is_subsumed_by(
            CLINICAL_FINDING, ASTHMA)

    def test_depths_match_graph_walk(self, core_indexes):
        ontology = build_core_ontology()
        ancestors = core_indexes.hierarchy.ancestors(ASTHMA)
        assert set(ancestors) == ontology.ancestors(ASTHMA)


class TestPayloads:
    def test_concept_round_trip(self, core_indexes):
        ontology = build_core_ontology()
        for concept in ontology.concepts():
            assert core_indexes.concept(concept.code) == concept

    def test_unknown_concept_is_none(self, core_indexes):
        assert core_indexes.concept("000000") is None

    def test_identity_metadata(self, core_indexes):
        assert core_indexes.system_code == SNOMED_SYSTEM_CODE
        assert core_indexes.concept_count == len(build_core_ontology())
        assert (core_indexes.fingerprint
                == build_core_ontology().fingerprint())


class TestPersistence:
    def test_backends_are_byte_identical(self, tmp_path):
        ontology = build_core_ontology()
        memory = MemoryStore()
        sqlite = SQLiteStore(str(tmp_path / "onto.db"))
        mmap_path = str(tmp_path / "onto.xms")
        build_ontology_indexes(ontology, memory)
        build_ontology_indexes(ontology, sqlite)
        with atomic_mmap_build(mmap_path) as writer:
            build_ontology_indexes(ontology, writer)
        dumps = {canonical_dump(store, ONTOLOGY_INDEX_STRATEGIES)
                 for store in (memory, sqlite, MmapStore(mmap_path))}
        assert len(dumps) == 1

    def test_reopen_from_sqlite(self, tmp_path):
        path = str(tmp_path / "onto.db")
        build_ontology_indexes(build_core_ontology(), SQLiteStore(path))
        reopened = OntologyIndexes(SQLiteStore(path, read_only=True))
        assert reopened.names.lookup("Asthma") == [(ASTHMA, 1.0)]
        assert reopened.concept(ASTHMA).preferred_term == "Asthma"

    def test_incomplete_store_rejected(self):
        store = MemoryStore()
        with pytest.raises(CorruptIndexError):
            OntologyIndexes(store)

    def test_version_mismatch_rejected(self):
        store = MemoryStore()
        build_ontology_indexes(build_core_ontology(), store)
        store.put_metadata("onto.index.version", "999")
        with pytest.raises(IncompatibleIndexError):
            OntologyIndexes(store)


class TestStreamedBuild:
    def test_stream_matches_materialized(self):
        builder = SyntheticSnomedBuilder(seed=5)
        streamed = MemoryStore()
        materialized = MemoryStore()
        from_stream = build_ontology_indexes(
            builder.stream(), streamed,
            system_code=SNOMED_SYSTEM_CODE, name=SNOMED_NAME)
        from_graph = build_ontology_indexes(builder.build(),
                                            materialized)
        assert from_stream.fingerprint == from_graph.fingerprint
        assert (canonical_dump(streamed, ONTOLOGY_INDEX_STRATEGIES)
                == canonical_dump(materialized,
                                  ONTOLOGY_INDEX_STRATEGIES))

    def test_stream_requires_system_code(self):
        builder = SyntheticSnomedBuilder(seed=5)
        with pytest.raises(OntologyError):
            build_ontology_indexes(builder.stream(), MemoryStore())

    def test_build_span_emitted(self):
        from repro.core.obs.tracer import Tracer
        tracer = Tracer()
        build_ontology_indexes(build_core_ontology(), MemoryStore(),
                               tracer=tracer)
        names = [span.name for span in tracer.finished()]
        assert "ontology.index.build" in names
