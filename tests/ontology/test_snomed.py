"""Unit tests for the synthetic SNOMED substrate."""

import pytest

from repro.ontology import snomed
from repro.ontology.snomed import (build_core_ontology,
                                   build_synthetic_snomed)


class TestCore:
    @pytest.fixture(scope="class")
    def core(self):
        return build_core_ontology()

    def test_paper_concepts_present(self, core):
        for code in (snomed.ASTHMA, snomed.ASTHMA_ATTACK,
                     snomed.BRONCHIAL_STRUCTURE,
                     snomed.DISORDER_OF_BRONCHUS, snomed.THEOPHYLLINE,
                     snomed.ALBUTEROL, snomed.BRONCHITIS,
                     snomed.ACETAMINOPHEN, snomed.ASPIRIN,
                     snomed.SUPRAVENTRICULAR_ARRHYTHMIA):
            assert code in core

    def test_asthma_has_26_direct_subclasses(self, core):
        """Section IV-B's worked example: 'the concept Asthma has 26
        direct subclasses. Hence... *(1/26)'."""
        assert core.subclass_count(snomed.ASTHMA) == 26

    def test_figure2_finding_site(self, core):
        """'SNOMED defines a finding-site-of relationship between Asthma
        and Bronchial Structure.'"""
        assert core.has_relationship(snomed.ASTHMA, snomed.FINDING_SITE_OF,
                                     snomed.BRONCHIAL_STRUCTURE)

    def test_figure2_taxonomy(self, core):
        assert core.is_subsumed_by(snomed.ASTHMA,
                                   snomed.DISORDER_OF_BRONCHUS)
        assert core.is_subsumed_by(snomed.ASTHMA_ATTACK, snomed.ASTHMA)
        assert core.is_subsumed_by(snomed.DISORDER_OF_BRONCHUS,
                                   snomed.DISORDER_OF_THORAX)

    def test_pain_control_context_shared(self, core):
        """Acetaminophen and aspirin associate with the same context but
        have no direct edge (the paper's error-analysis scenario)."""
        assert core.has_relationship(snomed.ACETAMINOPHEN,
                                     snomed.ASSOCIATED_WITH,
                                     snomed.PAIN_CONTROL)
        assert core.has_relationship(snomed.ASPIRIN,
                                     snomed.ASSOCIATED_WITH,
                                     snomed.PAIN_CONTROL)
        assert not core.has_relationship(snomed.ACETAMINOPHEN,
                                         snomed.ASSOCIATED_WITH,
                                         snomed.ASPIRIN)

    def test_no_drug_disorder_treatment_links(self, core):
        """SNOMED CT proper has no drug->disorder treatment relations."""
        assert snomed.MAY_TREAT not in core.relationship_types()

    def test_synonyms_searchable(self, core):
        regurgitation = core.concept(snomed.VALVULAR_REGURGITATION)
        assert "regurgitant flow" in regurgitation.synonyms

    def test_validates(self, core):
        core.validate()


class TestSyntheticExpansion:
    def test_deterministic(self):
        first = build_synthetic_snomed(scale=0.5, seed=99)
        second = build_synthetic_snomed(scale=0.5, seed=99)
        assert first.stats() == second.stats()
        assert sorted(first.concept_codes()) == \
            sorted(second.concept_codes())

    def test_seed_changes_output(self):
        first = build_synthetic_snomed(scale=0.5, seed=1)
        second = build_synthetic_snomed(scale=0.5, seed=2)
        terms_a = {c.preferred_term for c in first.concepts()}
        terms_b = {c.preferred_term for c in second.concepts()}
        assert terms_a != terms_b

    def test_scale_grows_ontology(self):
        small = build_synthetic_snomed(scale=0.5)
        large = build_synthetic_snomed(scale=2.0)
        assert len(large) > len(small)

    def test_scale_must_be_positive(self):
        with pytest.raises(ValueError):
            build_synthetic_snomed(scale=0)

    def test_core_preserved_in_expansion(self):
        ontology = build_synthetic_snomed()
        assert ontology.subclass_count(snomed.ASTHMA) == 26
        assert snomed.THEOPHYLLINE in ontology

    def test_expansion_validates(self):
        build_synthetic_snomed(scale=1.5).validate()

    def test_generated_disorders_have_sites(self):
        ontology = build_synthetic_snomed()
        generated = [c for c in ontology.concepts()
                     if c.code.startswith("92")
                     and c.semantic_tag == "disorder"
                     # top-axis groupers carry no finding sites
                     and snomed.CLINICAL_FINDING
                     not in ontology.parents(c.code)]
        assert generated
        with_site = sum(
            1 for c in generated
            if ontology.outgoing(c.code, snomed.FINDING_SITE_OF))
        assert with_site == len(generated)

    def test_top_axes_have_wide_fanout(self):
        """SNOMED-like top-level fan-out keeps the 1/N upward split
        effective (prevents whole-axis authority spills)."""
        ontology = build_synthetic_snomed()
        assert ontology.subclass_count(snomed.CLINICAL_FINDING) >= 20
        assert ontology.subclass_count(snomed.BODY_STRUCTURE) >= 10
        assert ontology.subclass_count(
            snomed.PHARMACEUTICAL_PRODUCT) >= 10

    def test_intermediate_fanouts_are_wide(self):
        """The upward 1/N split needs SNOMED-like fan-outs (DESIGN.md)."""
        ontology = build_synthetic_snomed()
        assert ontology.subclass_count(
            snomed.CARDIAC_FUNCTION_DISORDER) >= 5
        assert ontology.subclass_count(
            snomed.STRUCTURAL_HEART_DISORDER) >= 5


class TestDeterminismRegression:
    """Satellite guard: one seeded ``random.Random`` threads through
    every generation helper, so equal seeds yield *byte-identical*
    ontologies -- checked through the RF2 flat-file serialization, the
    strictest equality the repo has."""

    def test_same_seed_is_byte_identical(self, tmp_path):
        import os

        from repro.ontology.io import save_ontology
        first_dir = tmp_path / "first"
        second_dir = tmp_path / "second"
        save_ontology(build_synthetic_snomed(scale=1.0, seed=424242),
                      str(first_dir))
        save_ontology(build_synthetic_snomed(scale=1.0, seed=424242),
                      str(second_dir))
        names = sorted(os.listdir(first_dir))
        assert names == sorted(os.listdir(second_dir))
        for name in names:
            first_bytes = (first_dir / name).read_bytes()
            second_bytes = (second_dir / name).read_bytes()
            assert first_bytes == second_bytes, name

    def test_same_seed_same_fingerprint(self):
        assert (build_synthetic_snomed(seed=7).fingerprint()
                == build_synthetic_snomed(seed=7).fingerprint())
        assert (build_synthetic_snomed(seed=7).fingerprint()
                != build_synthetic_snomed(seed=8).fingerprint())
