"""Unit tests for CDA construction and the Figure 1 sample document."""

import pytest

from repro.cda import codes
from repro.cda.builder import CDABuilder
from repro.cda.sample import build_figure1_document, find_asthma_value_node
from repro.ontology import snomed
from repro.xmldoc.parser import parse_document
from repro.xmldoc.serializer import serialize


class TestBuilder:
    def test_header_shape(self):
        builder = CDABuilder("c1")
        builder.set_author("Juan", "Woodblack", provider_extension="KP1")
        builder.set_patient("A", "B", "M", "19990101", "49912",
                            organization_extension="M345")
        root = builder.root
        assert root.tag == "ClinicalDocument"
        assert root.find("assignedPerson") is not None
        assert root.find("patientRole") is not None
        gender = root.find("administrativeGenderCode")
        assert gender.attributes["code"] == "M"

    def test_sections_nest(self):
        builder = CDABuilder("c1")
        exam = builder.add_section(codes.LOINC_PHYSICAL_EXAM)
        vitals = builder.add_section(codes.LOINC_VITAL_SIGNS, parent=exam)
        assert vitals.parent.parent is exam  # component wrapper between

    def test_section_title_defaults(self):
        builder = CDABuilder("c1")
        section = builder.add_section(codes.LOINC_MEDICATIONS)
        assert section.find("title").text == "Medications"

    def test_observation_entry_is_code_node(self):
        builder = CDABuilder("c1")
        section = builder.add_section(codes.LOINC_PROBLEM_LIST)
        observation = builder.add_observation_entry(
            section, value_code=snomed.ASTHMA, value_display="Asthma")
        value = observation.find("value")
        assert value.is_code_node
        assert value.reference.concept_code == snomed.ASTHMA
        assert value.reference.system_code == codes.SNOMED_CT_OID

    def test_substance_administration_narrative(self):
        builder = CDABuilder("c1")
        section = builder.add_section(codes.LOINC_MEDICATIONS)
        administration = builder.add_substance_administration(
            section, drug_code=snomed.THEOPHYLLINE,
            drug_display="Theophylline", text=" 20 mg daily",
            content_id="m1")
        content = administration.find("content")
        assert content.attributes["ID"] == "m1"
        assert content.text == "Theophylline"
        assert content.tail == " 20 mg daily"

    def test_quantity_observation(self):
        builder = CDABuilder("c1")
        section = builder.add_section(codes.LOINC_VITAL_SIGNS)
        observation = builder.add_quantity_observation(
            section, code=snomed.BODY_HEIGHT, display="Body height",
            value=1.77, unit="m")
        value = observation.find("value")
        assert value.attributes == {"xsi:type": "PQ", "value": "1.77",
                                    "unit": "m"}

    def test_vitals_table(self):
        builder = CDABuilder("c1")
        section = builder.add_section(codes.LOINC_VITAL_SIGNS)
        builder.add_vitals_table(section, [("Temperature", "36.9 C"),
                                           ("Pulse", "86 / minute")])
        rows = section.findall("tr")
        assert len(rows) == 2
        assert rows[0].find("th").text == "Temperature"
        assert rows[0].find("td").text == "36.9 C"


class TestFigure1:
    @pytest.fixture(scope="class")
    def document(self):
        return build_figure1_document()

    def test_asthma_value_node_exists(self, document):
        node = find_asthma_value_node(document)
        assert node.attributes["displayName"] == "Asthma"
        assert node.find("reference").attributes["value"] == "m1"

    def test_bronchitis_nests_albuterol(self, document):
        for node in document.iter():
            if node.attributes.get("displayName") == "Bronchitis":
                inner = node.children[0]
                assert inner.tag == "value"
                assert inner.attributes["displayName"] == "Albuterol"
                break
        else:
            pytest.fail("no Bronchitis value node")

    def test_theophylline_narrative(self, document):
        text = document.root.subtree_text()
        assert "20 mg every other day" in text
        assert "Theophylline" in text

    def test_code_systems_match_paper(self, document):
        systems = document.referenced_systems()
        assert codes.SNOMED_CT_OID in systems
        assert codes.LOINC_OID in systems

    def test_roundtrips_through_xml(self, document):
        text = serialize(document)
        reparsed = parse_document(text)
        assert reparsed.node_count() == document.node_count()
        assert len(reparsed.code_nodes()) == len(document.code_nodes())

    def test_vital_signs_nested_in_exam(self, document):
        titles = [node.text for node in document.iter()
                  if node.tag == "title"]
        assert "Physical Examination" in titles
        assert "Vital Signs" in titles
