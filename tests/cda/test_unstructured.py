"""Unit tests for unstructured CDA bodies and whole-document retrieval
(the paper's Section II fallback scenario)."""

import pytest

from repro.cda.builder import CDABuilder
from repro.cda.generator import CDAGenerator
from repro.emr import generate_cardiac_emr
from repro.ir.document_retrieval import DocumentSearcher


class TestUnstructuredBody:
    def test_non_xml_body_shape(self):
        builder = CDABuilder("c1")
        builder.set_unstructured_body("Patient with asthma on "
                                      "theophylline.")
        non_xml = builder.root.find("nonXMLBody")
        assert non_xml is not None
        text = non_xml.find("text")
        assert text.attributes["mediaType"] == "text/plain"
        assert "asthma" in text.text

    def test_mutually_exclusive_with_sections(self):
        builder = CDABuilder("c1")
        builder.add_section("10160-0")
        with pytest.raises(ValueError):
            builder.set_unstructured_body("narrative")


class TestUnstructuredGeneration:
    @pytest.fixture(scope="class")
    def corpora(self):
        database = generate_cardiac_emr(n_patients=6, seed=31)
        structured, _ = CDAGenerator(database,
                                     structured=True).generate_corpus()
        unstructured, _ = CDAGenerator(database,
                                       structured=False).generate_corpus()
        return structured, unstructured

    def test_unstructured_documents_have_no_sections(self, corpora):
        _, unstructured = corpora
        for document in unstructured:
            assert document.root.find("section") is None
            assert document.root.find("nonXMLBody") is not None

    def test_unstructured_keeps_the_content(self, corpora):
        structured, unstructured = corpora
        for left, right in zip(structured, unstructured):
            narrative = right.root.subtree_text().lower()
            # Every diagnosis display name survives into the narrative.
            for node in left.iter():
                display = node.attributes.get("displayName", "")
                if display and node.tag == "value":
                    assert display.lower() in narrative

    def test_far_fewer_elements(self, corpora):
        structured, unstructured = corpora
        assert unstructured.total_nodes() < structured.total_nodes() / 2


class TestDocumentSearcher:
    @pytest.fixture(scope="class")
    def searcher(self):
        database = generate_cardiac_emr(n_patients=10, seed=31)
        corpus, _ = CDAGenerator(database,
                                 structured=False).generate_corpus()
        return DocumentSearcher(corpus), corpus, database

    def test_conjunctive_requires_all_keywords(self, searcher):
        engine, corpus, database = searcher
        hits = engine.search("asthma theophylline", k=10)
        for hit in hits:
            text = corpus.get(hit.doc_id).root.subtree_text().lower()
            assert "asthma" in text and "theophylline" in text

    def test_hits_match_ground_truth(self, searcher):
        engine, corpus, database = searcher
        hits = engine.search("amiodarone", k=20)
        from repro.ontology.snomed import AMIODARONE
        for hit in hits:
            patient_id = corpus.get(hit.doc_id).metadata["patient_id"]
            truth = database.ground_truth(patient_id)
            assert AMIODARONE in truth.drug_codes

    def test_disjunctive_mode(self):
        database = generate_cardiac_emr(n_patients=6, seed=31)
        corpus, _ = CDAGenerator(database,
                                 structured=False).generate_corpus()
        conjunctive = DocumentSearcher(corpus, conjunctive=True)
        disjunctive = DocumentSearcher(corpus, conjunctive=False)
        query = "asthma zebra"
        assert conjunctive.search(query) == []
        assert disjunctive.search(query)

    def test_scores_ranked_descending(self, searcher):
        engine, _, _ = searcher
        hits = engine.search("fever", k=10)
        scores = [hit.score for hit in hits]
        assert scores == sorted(scores, reverse=True)
