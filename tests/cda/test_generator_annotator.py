"""Unit tests for EMR-to-CDA conversion and reference annotation."""

import pytest

from repro.cda.annotator import ReferenceAnnotator
from repro.cda.generator import CDAGenerator, build_cda_corpus
from repro.emr import generate_cardiac_emr
from repro.ontology import TerminologyService, snomed
from repro.ontology.snomed import build_core_ontology
from repro.xmldoc.model import XMLDocument, XMLNode


@pytest.fixture(scope="module")
def terminology():
    return TerminologyService([build_core_ontology()])


@pytest.fixture(scope="module")
def database():
    return generate_cardiac_emr(n_patients=6, seed=17)


class TestGenerator:
    def test_one_document_per_patient(self, database, terminology):
        corpus, report = build_cda_corpus(database, terminology)
        assert len(corpus) == database.stats()["patients"]
        assert report.documents == len(corpus)

    def test_documents_carry_patient_metadata(self, database, terminology):
        corpus, _ = build_cda_corpus(database, terminology)
        for document in corpus:
            patient_id = document.metadata["patient_id"]
            patient = database.patient(patient_id)
            text = document.root.subtree_text()
            assert patient.given_name in text

    def test_structure_follows_cda(self, database, terminology):
        corpus, _ = build_cda_corpus(database, terminology)
        document = next(iter(corpus))
        assert document.root.tag == "ClinicalDocument"
        assert document.root.find("StructuredBody") is not None
        assert document.root.findall("section")

    def test_diagnoses_become_coded_observations(self, database,
                                                 terminology):
        corpus, _ = build_cda_corpus(database, terminology)
        for document in corpus:
            truth = database.ground_truth(document.metadata["patient_id"])
            referenced = {node.reference.concept_code
                          for node in document.code_nodes()}
            missing = truth.condition_codes - referenced
            assert not missing

    def test_report_averages(self, database, terminology):
        _, report = build_cda_corpus(database, terminology)
        assert report.average_elements > 50
        assert report.average_references > 10

    def test_generation_without_terminology(self, database):
        corpus, report = CDAGenerator(database).generate_corpus()
        assert len(corpus) == database.stats()["patients"]
        assert report.annotation.nodes_annotated == 0


class TestAnnotator:
    def test_annotates_matching_text(self, terminology):
        root = XMLNode("doc")
        root.add("paragraph", text="History of asthma since childhood")
        document = XMLDocument(doc_id=0, root=root)
        report = ReferenceAnnotator(terminology).annotate_document(document)
        assert report.nodes_annotated == 1
        paragraph = root.children[0]
        assert paragraph.reference.concept_code == snomed.ASTHMA

    def test_longest_match_wins(self, terminology):
        root = XMLNode("doc")
        root.add("p", text="asthma attack observed")
        document = XMLDocument(doc_id=0, root=root)
        ReferenceAnnotator(terminology).annotate_document(document)
        assert root.children[0].reference.concept_code == \
            snomed.ASTHMA_ATTACK

    def test_existing_references_untouched(self, terminology):
        from repro.xmldoc.model import OntologicalReference
        root = XMLNode("doc")
        coded = root.add("p", text="asthma",
                         reference=OntologicalReference("x", "1"))
        document = XMLDocument(doc_id=0, root=root)
        report = ReferenceAnnotator(terminology).annotate_document(document)
        assert coded.reference == OntologicalReference("x", "1")
        assert report.nodes_annotated == 0

    def test_non_matching_text_left_alone(self, terminology):
        root = XMLNode("doc")
        root.add("p", text="nothing clinical here at all")
        document = XMLDocument(doc_id=0, root=root)
        report = ReferenceAnnotator(terminology).annotate_document(document)
        assert report.nodes_annotated == 0
        assert root.children[0].reference is None

    def test_corpus_annotation_adds_references(self, database, terminology):
        bare_corpus, bare = CDAGenerator(
            database, terminology, annotate_narrative=False).generate_corpus()
        annotated_corpus, annotated = CDAGenerator(
            database, terminology, annotate_narrative=True).generate_corpus()
        assert annotated.total_references > bare.total_references
