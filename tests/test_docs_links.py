"""Docs lint: every intra-repo link in the documentation must resolve.

Scans ``README.md`` and ``docs/**/*.md`` for markdown links and inline
file references, and fails on any relative link whose target does not
exist. External URLs, mail links, and pure in-page anchors are skipped.
CI runs this as its docs-lint step, so a renamed file cannot silently
orphan the documentation pointing at it.
"""

import os
import re

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: Inline markdown links: ``[label](target)`` (images included).
_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")

_SKIP_SCHEMES = ("http://", "https://", "mailto:")


def documentation_files():
    files = [os.path.join(REPO_ROOT, "README.md")]
    docs_dir = os.path.join(REPO_ROOT, "docs")
    for dirpath, _, filenames in os.walk(docs_dir):
        for filename in sorted(filenames):
            if filename.endswith(".md"):
                files.append(os.path.join(dirpath, filename))
    return files


def relative_links(path):
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    for match in _LINK.finditer(text):
        target = match.group(1)
        if target.startswith(_SKIP_SCHEMES):
            continue
        if target.startswith("#"):  # in-page anchor
            continue
        yield target.split("#", 1)[0]  # drop any anchor suffix


def anchored_links(path):
    """``(target_path, fragment)`` for every link carrying a fragment;
    in-page anchors yield the source file itself as the target."""
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    for match in _LINK.finditer(text):
        target = match.group(1)
        if target.startswith(_SKIP_SCHEMES) or "#" not in target:
            continue
        file_part, fragment = target.split("#", 1)
        if not file_part:
            yield path, fragment
        elif file_part.endswith(".md"):
            yield os.path.normpath(
                os.path.join(os.path.dirname(path), file_part)), fragment


def heading_slugs(path):
    """GitHub-style anchor slugs of every markdown heading in a file."""
    slugs = set()
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            if not line.startswith("#"):
                continue
            title = line.lstrip("#").strip()
            slug = re.sub(r"[^\w\- ]", "", title.lower())
            slugs.add(slug.replace(" ", "-"))
    return slugs


@pytest.mark.parametrize("path", documentation_files(),
                         ids=lambda p: os.path.relpath(p, REPO_ROOT))
def test_intra_repo_links_resolve(path):
    dead = []
    for target in relative_links(path):
        resolved = os.path.normpath(
            os.path.join(os.path.dirname(path), target))
        if not os.path.exists(resolved):
            dead.append(target)
    assert not dead, (
        f"{os.path.relpath(path, REPO_ROOT)} has dead links: {dead}")


def test_docs_tree_is_complete():
    """The docs index and the pages it promises all exist."""
    for name in ("README.md", "PAPER_MAP.md", "ARCHITECTURE.md",
                 "OBSERVABILITY.md", "STORAGE.md", "SERVING.md"):
        assert os.path.exists(os.path.join(REPO_ROOT, "docs", name))


def test_docs_index_links_every_page():
    index_path = os.path.join(REPO_ROOT, "docs", "README.md")
    with open(index_path, encoding="utf-8") as handle:
        index = handle.read()
    for name in ("PAPER_MAP.md", "ARCHITECTURE.md", "OBSERVABILITY.md",
                 "EXPERIMENTS.md", "STORAGE.md", "SERVING.md"):
        assert name in index, f"docs/README.md does not link {name}"


@pytest.mark.parametrize("path", documentation_files(),
                         ids=lambda p: os.path.relpath(p, REPO_ROOT))
def test_anchor_fragments_resolve(path):
    """Every ``#fragment`` on a markdown link must match a heading slug
    in the target page (the format spec's table of contents relies on
    these staying stable)."""
    dead = []
    for target, fragment in anchored_links(path):
        if not os.path.exists(target):
            continue  # dead files are test_intra_repo_links_resolve's job
        if fragment not in heading_slugs(target):
            dead.append(f"{os.path.relpath(target, REPO_ROOT)}"
                        f"#{fragment}")
    assert not dead, (
        f"{os.path.relpath(path, REPO_ROOT)} has dead anchors: {dead}")


def test_every_instrument_name_is_documented():
    """docs/OBSERVABILITY.md is the instrument catalog: every span name
    opened anywhere in ``src/`` and every counter constant declared in
    ``repro.core.stats`` must appear in it."""
    span_name = re.compile(r"\.span\(\s*\"([^\"]+)\"")
    counter_constant = re.compile(r"^[A-Z_]+ = \"([a-z_.]+)\"",
                                  re.MULTILINE)
    names = set()
    src_dir = os.path.join(REPO_ROOT, "src", "repro")
    for dirpath, _, filenames in os.walk(src_dir):
        for filename in filenames:
            if not filename.endswith(".py"):
                continue
            with open(os.path.join(dirpath, filename),
                      encoding="utf-8") as handle:
                text = handle.read()
            names.update(span_name.findall(text))
    stats_path = os.path.join(src_dir, "core", "stats.py")
    with open(stats_path, encoding="utf-8") as handle:
        names.update(counter_constant.findall(handle.read()))

    catalog_path = os.path.join(REPO_ROOT, "docs", "OBSERVABILITY.md")
    with open(catalog_path, encoding="utf-8") as handle:
        catalog = handle.read()
    undocumented = sorted(name for name in names if name not in catalog)
    assert not undocumented, (
        f"instrument names missing from docs/OBSERVABILITY.md: "
        f"{undocumented}")
