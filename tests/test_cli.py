"""End-to-end tests for the command-line interface."""

import os

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def data_dir(tmp_path_factory):
    directory = str(tmp_path_factory.mktemp("clidata"))
    code = main(["generate", "--out", directory, "--patients", "4",
                 "--seed", "3"])
    assert code == 0
    return directory


class TestGenerate:
    def test_layout(self, data_dir):
        assert os.path.isdir(os.path.join(data_dir, "ontology"))
        corpus_dir = os.path.join(data_dir, "corpus")
        documents = [name for name in os.listdir(corpus_dir)
                     if name.endswith(".xml")]
        assert len(documents) == 4

    def test_output_summary(self, data_dir, capsys):
        main(["generate", "--out", data_dir, "--patients", "4",
              "--seed", "3"])
        captured = capsys.readouterr()
        assert "ontology:" in captured.out
        assert "corpus: 4 documents" in captured.out


class TestIndexAndSearch:
    def test_index_then_search(self, data_dir, tmp_path, capsys):
        store = str(tmp_path / "index.db")
        assert main(["index", "--data", data_dir, "--store", store]) == 0
        captured = capsys.readouterr()
        assert "XOnto-DILs" in captured.out
        assert os.path.exists(store)

        code = main(["search", "--data", data_dir, "--store", store,
                     "asthma theophylline", "-k", "3"])
        captured = capsys.readouterr()
        assert "loaded" in captured.out
        # Either results or a clean no-results exit, depending on the
        # tiny corpus; both paths must not crash.
        assert code in (0, 1)

    def test_search_without_store(self, data_dir, capsys):
        code = main(["search", "--data", data_dir, "fever", "-k", "2"])
        captured = capsys.readouterr()
        assert code in (0, 1)
        assert captured.out.strip()

    def test_search_explain_flag(self, data_dir, capsys):
        code = main(["search", "--data", data_dir,
                     "fever acetaminophen", "-k", "1", "--explain"])
        captured = capsys.readouterr()
        if code == 0:
            assert "via" in captured.out

    def test_xrank_strategy(self, data_dir, capsys):
        code = main(["search", "--data", data_dir, "--strategy", "xrank",
                     "fever", "-k", "2"])
        assert code in (0, 1)
        capsys.readouterr()


class TestEvaluate:
    def test_survey_table(self, data_dir, capsys):
        assert main(["evaluate", "--data", data_dir, "--k", "3"]) == 0
        captured = capsys.readouterr()
        assert "AVERAGE" in captured.out
        assert "xrank" in captured.out
        assert "relationships" in captured.out


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_strategy_rejected(self, data_dir):
        with pytest.raises(SystemExit):
            main(["search", "--data", data_dir, "--strategy", "bogus",
                  "q"])

    def test_missing_corpus_errors(self, tmp_path):
        empty = str(tmp_path / "empty")
        os.makedirs(os.path.join(empty, "corpus"))
        with pytest.raises(FileNotFoundError):
            main(["search", "--data", empty, "q"])


class TestStatsAndParameters:
    def test_stats_subcommand(self, data_dir, capsys):
        assert main(["stats", "--data", data_dir]) == 0
        captured = capsys.readouterr()
        assert "ontology:" in captured.out
        assert "vocabulary (document words):" in captured.out

    def test_parameter_flags_accepted(self, data_dir, capsys):
        code = main(["search", "--data", data_dir, "--threshold", "0.3",
                     "--decay", "0.4", "--t", "0.25", "fever", "-k", "1"])
        assert code in (0, 1)
        capsys.readouterr()

    def test_invalid_parameters_rejected(self, data_dir):
        with pytest.raises(ValueError):
            main(["search", "--data", data_dir, "--decay", "0", "fever"])
