"""End-to-end tests for the command-line interface."""

import os

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def data_dir(tmp_path_factory):
    directory = str(tmp_path_factory.mktemp("clidata"))
    code = main(["generate", "--out", directory, "--patients", "4",
                 "--seed", "3"])
    assert code == 0
    return directory


class TestGenerate:
    def test_layout(self, data_dir):
        assert os.path.isdir(os.path.join(data_dir, "ontology"))
        corpus_dir = os.path.join(data_dir, "corpus")
        documents = [name for name in os.listdir(corpus_dir)
                     if name.endswith(".xml")]
        assert len(documents) == 4

    def test_output_summary(self, data_dir, capsys):
        main(["generate", "--out", data_dir, "--patients", "4",
              "--seed", "3"])
        captured = capsys.readouterr()
        assert "ontology:" in captured.out
        assert "corpus: 4 documents" in captured.out


class TestIndexAndSearch:
    def test_index_then_search(self, data_dir, tmp_path, capsys):
        store = str(tmp_path / "index.db")
        assert main(["index", "--data", data_dir, "--store", store]) == 0
        captured = capsys.readouterr()
        assert "XOnto-DILs" in captured.out
        assert os.path.exists(store)

        code = main(["search", "--data", data_dir, "--store", store,
                     "asthma theophylline", "-k", "3"])
        captured = capsys.readouterr()
        assert "loaded" in captured.out
        # Either results or a clean no-results exit, depending on the
        # tiny corpus; both paths must not crash.
        assert code in (0, 1)

    def test_search_without_store(self, data_dir, capsys):
        code = main(["search", "--data", data_dir, "fever", "-k", "2"])
        captured = capsys.readouterr()
        assert code in (0, 1)
        assert captured.out.strip()

    def test_search_explain_flag(self, data_dir, capsys):
        code = main(["search", "--data", data_dir,
                     "fever acetaminophen", "-k", "1", "--explain"])
        captured = capsys.readouterr()
        if code == 0:
            assert "via" in captured.out

    def test_xrank_strategy(self, data_dir, capsys):
        code = main(["search", "--data", data_dir, "--strategy", "xrank",
                     "fever", "-k", "2"])
        assert code in (0, 1)
        capsys.readouterr()

    def test_narrative_flag(self, data_dir, capsys):
        code = main(["search", "--data", data_dir, "--narrative",
                     "was febrile and on acetaminophen", "-k", "2"])
        captured = capsys.readouterr()
        assert code in (0, 1)
        # The synonym phrasing is normalized to the preferred terms
        # before the engine runs, and the mapping is printed.
        assert "narrative query mapped to: acetaminophen fever" \
            in captured.out
        assert "[synonym] 'febrile' -> " in captured.out

    def test_narrative_without_ontology_errors(self, data_dir, capsys):
        # Bare XRANK loads no terminology, so the flag must fail
        # loudly instead of silently searching the raw prose.
        code = main(["search", "--data", data_dir, "--strategy", "xrank",
                     "--narrative", "was febrile", "-k", "2"])
        captured = capsys.readouterr()
        assert code == 2
        assert "narrative" in captured.err.lower() \
            or "narrative" in captured.out.lower()


class TestEvaluate:
    def test_survey_table(self, data_dir, capsys):
        assert main(["evaluate", "--data", data_dir, "--k", "3"]) == 0
        captured = capsys.readouterr()
        assert "AVERAGE" in captured.out
        assert "xrank" in captured.out
        assert "relationships" in captured.out


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_strategy_rejected(self, data_dir):
        with pytest.raises(SystemExit):
            main(["search", "--data", data_dir, "--strategy", "bogus",
                  "q"])

    def test_missing_corpus_errors(self, tmp_path):
        empty = str(tmp_path / "empty")
        os.makedirs(os.path.join(empty, "corpus"))
        with pytest.raises(FileNotFoundError):
            main(["search", "--data", empty, "q"])

    @pytest.mark.parametrize("bad_k", ["0", "-3", "two"])
    def test_top_k_must_be_a_positive_int(self, data_dir, capsys,
                                          bad_k):
        """k < 1 used to reach rank_results and traceback; argparse
        must reject it as a usage error (exit code 2) instead."""
        with pytest.raises(SystemExit) as excinfo:
            main(["search", "--data", data_dir, "fever",
                  "--top-k", bad_k])
        assert excinfo.value.code == 2
        message = capsys.readouterr().err
        assert "positive integer" in message or "invalid" in message

    def test_top_k_long_flag_matches_short(self, data_dir, capsys):
        code_long = main(["search", "--data", data_dir, "fever",
                          "--top-k", "2"])
        long_output = capsys.readouterr().out
        code_short = main(["search", "--data", data_dir, "fever",
                           "-k", "2"])
        short_output = capsys.readouterr().out
        assert code_long == code_short
        assert long_output == short_output


class TestRobustness:
    @pytest.fixture(scope="class")
    def built_store(self, data_dir, tmp_path_factory):
        store = str(tmp_path_factory.mktemp("robust") / "index.db")
        assert main(["index", "--data", data_dir, "--store", store]) == 0
        return store

    def test_missing_store_is_an_error_and_not_created(self, data_dir,
                                                       tmp_path,
                                                       capsys):
        missing = str(tmp_path / "missing.db")
        code = main(["search", "--data", data_dir, "--store", missing,
                     "asthma"])
        captured = capsys.readouterr()
        assert code == 2
        assert "no index store" in captured.err
        # The old behavior silently created an empty database here.
        assert not os.path.exists(missing)

    def test_index_reports_manifest(self, built_store, capsys):
        capsys.readouterr()
        assert main(["verify-index", "--store", built_store]) == 0
        captured = capsys.readouterr()
        assert "manifest: OK" in captured.out
        assert "checksum-verified" in captured.out

    def test_verify_index_missing_store(self, tmp_path, capsys):
        code = main(["verify-index", "--store",
                     str(tmp_path / "nope.db")])
        captured = capsys.readouterr()
        assert code == 2
        assert "no index store" in captured.err

    def test_verify_index_detects_tampering(self, built_store,
                                            tmp_path, capsys):
        import shutil
        from repro.storage.sqlite_store import SQLiteStore
        tampered = str(tmp_path / "tampered.db")
        shutil.copyfile(built_store, tampered)
        with SQLiteStore(tampered) as store:
            keyword = next(iter(store.keywords("relationships")))
            store.put_postings("relationships", keyword,
                               [("0.9.9", 9.9)])
        code = main(["verify-index", "--store", tampered])
        captured = capsys.readouterr()
        assert code == 1
        assert "checksum mismatch" in captured.out

    def test_garbage_store_degrades_by_default(self, data_dir,
                                               tmp_path, capsys):
        garbage = str(tmp_path / "garbage.db")
        with open(garbage, "wb") as handle:
            handle.write(b"not a database" * 256)
        code = main(["search", "--data", data_dir, "--store", garbage,
                     "fever", "-k", "2"])
        captured = capsys.readouterr()
        assert code in (0, 1)
        assert "warning: ignoring index store" in captured.err

    def test_garbage_store_fatal_under_strict(self, data_dir,
                                              tmp_path, capsys):
        garbage = str(tmp_path / "garbage-strict.db")
        with open(garbage, "wb") as handle:
            handle.write(b"not a database" * 256)
        for flag in ("--strict", "--no-fallback"):
            code = main(["search", "--data", data_dir, "--store",
                         garbage, "fever", flag])
            captured = capsys.readouterr()
            assert code == 2
            assert "cannot use index store" in captured.err

    def test_incompatible_parameters_degrade_or_fail(self, data_dir,
                                                     built_store,
                                                     capsys):
        # The store was built with decay=0.5; searching with 0.4 must
        # not silently load it.
        code = main(["search", "--data", data_dir, "--store",
                     built_store, "fever", "--decay", "0.4"])
        captured = capsys.readouterr()
        assert code in (0, 1)
        assert "warning: ignoring index store" in captured.err
        code = main(["search", "--data", data_dir, "--store",
                     built_store, "fever", "--decay", "0.4",
                     "--strict"])
        captured = capsys.readouterr()
        assert code == 2
        assert "decay" in captured.err

    def test_verbose_prints_resilience_counters(self, data_dir,
                                                built_store, capsys):
        code = main(["search", "--data", data_dir, "--store",
                     built_store, "fever", "-k", "2", "--verbose"])
        captured = capsys.readouterr()
        assert code in (0, 1)
        assert "loaded" in captured.out
        assert "stats:" in captured.out
        assert "engine.integrity.validations=1" in captured.out

    def test_no_partial_file_after_failed_build(self, tmp_path,
                                                capsys):
        # An index build against a broken data directory must not
        # leave anything at the published path.
        empty = str(tmp_path / "empty-data")
        os.makedirs(os.path.join(empty, "corpus"))
        store = str(tmp_path / "never.db")
        with pytest.raises(FileNotFoundError):
            main(["index", "--data", empty, "--store", store])
        assert not os.path.exists(store)
        assert not os.path.exists(store + ".building")


class TestSharded:
    @pytest.fixture(scope="class")
    def shard_stores(self, data_dir, tmp_path_factory):
        store = str(tmp_path_factory.mktemp("sharded") / "index.db")
        assert main(["index", "--data", data_dir, "--store", store,
                     "--shards", "3"]) == 0
        return store

    def test_index_writes_one_store_per_shard(self, shard_stores,
                                              capsys):
        capsys.readouterr()
        from repro.core.query.federated import shard_store_path
        paths = [shard_store_path(shard_stores, shard, 3)
                 for shard in range(3)]
        for path in paths:
            assert os.path.exists(path)
            assert main(["verify-index", "--store", path]) == 0
        assert not os.path.exists(shard_stores)  # no single-store file
        capsys.readouterr()

    def test_federated_search_matches_single(self, data_dir,
                                             shard_stores, capsys):
        query = "asthma theophylline"
        code = main(["search", "--data", data_dir, "--store",
                     shard_stores, "--shards", "3",
                     "--shard-workers", "2", query, "-k", "3"])
        federated = capsys.readouterr().out
        assert code in (0, 1)
        assert federated.count("loaded") == 3
        single_code = main(["search", "--data", data_dir, query,
                            "-k", "3"])
        single = capsys.readouterr().out
        assert single_code == code
        ranked = [line for line in federated.splitlines()
                  if line.startswith("#")]
        assert ranked == [line for line in single.splitlines()
                          if line.startswith("#")]

    def test_missing_shard_store_is_an_error(self, data_dir,
                                             shard_stores, capsys):
        code = main(["search", "--data", data_dir, "--store",
                     shard_stores, "--shards", "4", "asthma"])
        captured = capsys.readouterr()
        assert code == 2
        assert "no index store" in captured.err
        assert "--shards 4" in captured.err

    def test_sharded_search_without_store(self, data_dir, capsys):
        code = main(["search", "--data", data_dir, "--shards", "2",
                     "fever", "-k", "2"])
        captured = capsys.readouterr()
        assert code in (0, 1)
        assert captured.out.strip()

    def test_rejects_non_positive_shards(self, data_dir, capsys):
        with pytest.raises(SystemExit):
            main(["search", "--data", data_dir, "--shards", "0",
                  "fever"])
        capsys.readouterr()


class TestStatsAndParameters:
    def test_stats_subcommand(self, data_dir, capsys):
        assert main(["stats", "--data", data_dir]) == 0
        captured = capsys.readouterr()
        assert "ontology:" in captured.out
        assert "vocabulary (document words):" in captured.out

    def test_parameter_flags_accepted(self, data_dir, capsys):
        code = main(["search", "--data", data_dir, "--threshold", "0.3",
                     "--decay", "0.4", "--t", "0.25", "fever", "-k", "1"])
        assert code in (0, 1)
        capsys.readouterr()

    def test_invalid_parameters_rejected(self, data_dir):
        with pytest.raises(ValueError):
            main(["search", "--data", data_dir, "--decay", "0", "fever"])


class TestProfiling:
    def test_search_profile_prints_phase_table(self, data_dir, capsys):
        code = main(["search", "--data", data_dir,
                     "asthma theophylline", "-k", "3", "--profile"])
        captured = capsys.readouterr()
        assert code in (0, 1)
        assert "PROFILE -- per-phase timings (milliseconds)" in \
            captured.out
        # The canonical query phases print even when zero, so the
        # output shape is stable for scripts.
        for phase in ("parse", "ontoscore", "dil_merge", "storage"):
            assert f"\n{phase}" in captured.out
        assert "instruments:" in captured.out
        assert "query.search:" in captured.out
        assert "spans:" in captured.out

    def test_search_metrics_out_writes_json_lines(self, data_dir,
                                                  tmp_path, capsys):
        import json
        metrics = str(tmp_path / "metrics.jsonl")
        code = main(["search", "--data", data_dir, "asthma", "-k", "2",
                     "--metrics-out", metrics])
        captured = capsys.readouterr()
        assert code in (0, 1)
        assert f"-> {metrics}" in captured.out
        with open(metrics, encoding="utf-8") as handle:
            rows = [json.loads(line) for line in handle]
        assert rows, "metrics file must not be empty"
        assert {row["type"] for row in rows} <= {"counter", "timer"}
        names = [row["name"] for row in rows if row["type"] == "timer"]
        assert "query.search" in names

    def test_search_trace_out_writes_chrome_trace(self, data_dir,
                                                  tmp_path, capsys):
        import json
        trace_path = str(tmp_path / "trace.json")
        code = main(["search", "--data", data_dir, "asthma", "-k", "2",
                     "--trace-out", trace_path])
        captured = capsys.readouterr()
        assert code in (0, 1)
        assert "perfetto" in captured.out
        with open(trace_path, encoding="utf-8") as handle:
            trace = json.load(handle)
        assert trace["displayTimeUnit"] == "ms"
        events = trace["traceEvents"]
        assert events
        assert {event["ph"] for event in events} == {"X"}
        assert "query.search" in {event["name"] for event in events}

    def test_index_profile_reports_build_phases(self, data_dir,
                                                tmp_path, capsys):
        store = str(tmp_path / "index.db")
        code = main(["index", "--data", data_dir, "--store", store,
                     "--workers", "2", "--profile"])
        captured = capsys.readouterr()
        assert code == 0
        assert "PROFILE -- per-phase timings (milliseconds)" in \
            captured.out
        assert "index_build" in captured.out
        assert "parallel_build.shard_build:" in captured.out

    def test_verbose_prints_timer_histograms(self, data_dir, capsys):
        code = main(["search", "--data", data_dir, "asthma", "-k", "2",
                     "--profile", "--verbose"])
        captured = capsys.readouterr()
        assert code in (0, 1)
        assert "timers:" in captured.out
        assert "p95=" in captured.out

    def test_no_profiling_flags_no_profile_output(self, data_dir,
                                                  capsys):
        code = main(["search", "--data", data_dir, "asthma", "-k", "2"])
        captured = capsys.readouterr()
        assert code in (0, 1)
        assert "PROFILE" not in captured.out


class TestMmapStoreFormat:
    @pytest.fixture(scope="class")
    def mmap_store(self, data_dir, tmp_path_factory):
        store = str(tmp_path_factory.mktemp("mmapstore") / "index.mm")
        assert main(["index", "--data", data_dir, "--store", store,
                     "--store-format", "mmap"]) == 0
        return store

    @staticmethod
    def _ranking(out):
        return [line for line in out.splitlines()
                if line.startswith("#")]

    def test_search_matches_sqlite(self, data_dir, mmap_store,
                                   tmp_path, capsys):
        sqlite = str(tmp_path / "index.db")
        assert main(["index", "--data", data_dir,
                     "--store", sqlite]) == 0
        capsys.readouterr()
        assert main(["search", "--data", data_dir, "--store", sqlite,
                     "fever", "-k", "3"]) in (0, 1)
        from_sqlite = self._ranking(capsys.readouterr().out)
        assert main(["search", "--data", data_dir,
                     "--store", mmap_store,
                     "fever", "-k", "3"]) in (0, 1)
        from_mmap = self._ranking(capsys.readouterr().out)
        assert from_mmap and from_mmap == from_sqlite

    def test_verify_index_reports_blocks(self, mmap_store, capsys):
        assert main(["verify-index", "--store", mmap_store]) == 0
        out = capsys.readouterr().out
        assert "format: mmap store" in out
        assert "compact posting blocks crc32-verified" in out
        assert "sha256" in out

    def test_verify_index_catches_block_damage(self, data_dir,
                                               tmp_path, capsys):
        store = str(tmp_path / "damaged.mm")
        assert main(["index", "--data", data_dir, "--store", store,
                     "--store-format", "mmap"]) == 0
        from repro.storage import MmapStore
        reader = MmapStore(store)
        strategy = next(iter(reader._postings))
        keyword = next(iter(reader._postings[strategy]))
        offset = reader._postings[strategy][keyword][0]
        reader.close()
        data = bytearray(open(store, "rb").read())
        data[offset + 16] ^= 0xFF
        open(store, "wb").write(bytes(data))
        assert main(["verify-index", "--store", store]) == 1
        out = capsys.readouterr().out
        # Damage surfaces either in the per-block sweep or already in
        # the manifest checksum pass -- both name the corrupt block.
        assert "FAIL" in out
        assert "checksum mismatch" in out

    def test_append_refuses_mmap(self, data_dir, mmap_store, capsys):
        code = main(["index", "--data", data_dir, "--store", mmap_store,
                     "--append"])
        assert code == 2
        assert "immutable" in capsys.readouterr().err

    def test_compact_refuses_mmap(self, mmap_store, capsys):
        code = main(["compact", "--store", mmap_store])
        assert code == 2
        assert "rebuild" in capsys.readouterr().err


class TestBuildOntology:
    def test_from_data_directory(self, data_dir, tmp_path, capsys):
        store = str(tmp_path / "onto.db")
        assert main(["build-ontology", "--data", data_dir,
                     "--store", store]) == 0
        captured = capsys.readouterr()
        assert "built ontology indexes:" in captured.out
        assert "ontology fingerprint:" in captured.out
        assert os.path.exists(store)

    def test_synthetic_stream_to_mmap(self, tmp_path, capsys):
        store = str(tmp_path / "onto.xms")
        assert main(["build-ontology", "--store", store,
                     "--store-format", "mmap",
                     "--target-concepts", "500",
                     "--ontology-seed", "9"]) == 0
        captured = capsys.readouterr()
        assert "built ontology indexes:" in captured.out
        assert main(["verify-index", "--store", store]) == 0

    def test_built_store_resolves_terms(self, data_dir, tmp_path):
        store = str(tmp_path / "onto.db")
        assert main(["build-ontology", "--data", data_dir,
                     "--store", store]) == 0
        from repro.ontology.api import TerminologyService
        from repro.ontology.indexes import OntologyIndexes
        from repro.storage.sqlite_store import SQLiteStore
        service = TerminologyService()
        service.register_indexes(
            OntologyIndexes(SQLiteStore(store, read_only=True)))
        assert service.lookup_term("asthma")


class TestOntologyCacheFlag:
    def test_cold_then_warm_summary(self, data_dir, tmp_path, capsys):
        cache = str(tmp_path / "cache.db")
        store_a = str(tmp_path / "a.db")
        store_b = str(tmp_path / "b.db")
        assert main(["index", "--data", data_dir, "--store", store_a,
                     "--ontology-cache", cache]) == 0
        cold = capsys.readouterr().out
        assert "ontology-cache:" in cold
        assert "hits=0" in cold
        assert main(["index", "--data", data_dir, "--store", store_b,
                     "--ontology-cache", cache]) == 0
        warm = capsys.readouterr().out
        assert "misses=0" in warm

    def test_xrank_ignores_cache(self, data_dir, tmp_path, capsys):
        cache = str(tmp_path / "cache.db")
        store = str(tmp_path / "x.db")
        assert main(["index", "--data", data_dir, "--store", store,
                     "--strategy", "xrank",
                     "--ontology-cache", cache]) == 0
        assert "ontology-cache:" not in capsys.readouterr().out


class TestServeCorpusFlag:
    def test_malformed_spec_rejected(self, data_dir, capsys):
        code = main(["serve", "--data", data_dir,
                     "--corpus", "no-equals-sign"])
        assert code == 2
        assert "NAME=PATH" in capsys.readouterr().err

    def test_duplicate_name_rejected(self, data_dir, capsys):
        code = main(["serve", "--data", data_dir,
                     "--corpus", f"default={data_dir}"])
        assert code == 2
        assert "duplicate" in capsys.readouterr().err
