"""Error taxonomy, open-time probing, read-only mode and thread
safety of the SQLite store."""

import sqlite3
import threading

import pytest

from repro.storage.errors import (CorruptIndexError,
                                  IncompatibleIndexError, StorageError,
                                  TransientStorageError)
from repro.storage.sqlite_store import SQLiteStore, translate_sqlite_error

POSTINGS = [("0.1.2", 0.5), ("0.3", 1.0), ("2.0.1.4", 0.25)]


class TestTaxonomy:
    def test_hierarchy(self):
        for subclass in (TransientStorageError, CorruptIndexError,
                         IncompatibleIndexError):
            assert issubclass(subclass, StorageError)
        assert issubclass(StorageError, RuntimeError)

    def test_interface_reexports_taxonomy(self):
        # StorageError historically lived in repro.storage.interface.
        from repro.storage import interface
        assert interface.StorageError is StorageError
        assert interface.CorruptIndexError is CorruptIndexError


class TestErrorTranslation:
    def test_locked_is_transient(self):
        exc = sqlite3.OperationalError("database is locked")
        assert isinstance(translate_sqlite_error(exc, "x.db"),
                          TransientStorageError)

    def test_busy_is_transient(self):
        exc = sqlite3.OperationalError("database is busy")
        assert isinstance(translate_sqlite_error(exc, "x.db"),
                          TransientStorageError)

    def test_malformed_is_corrupt(self):
        exc = sqlite3.DatabaseError("database disk image is malformed")
        assert isinstance(translate_sqlite_error(exc, "x.db"),
                          CorruptIndexError)

    def test_not_a_database_is_corrupt(self):
        exc = sqlite3.DatabaseError("file is not a database")
        assert isinstance(translate_sqlite_error(exc, "x.db"),
                          CorruptIndexError)

    def test_other_operational_is_plain_storage_error(self):
        exc = sqlite3.OperationalError("no such table: postings")
        translated = translate_sqlite_error(exc, "x.db")
        assert isinstance(translated, StorageError)
        assert not isinstance(translated, (TransientStorageError,
                                           CorruptIndexError))

    def test_path_lands_in_message(self):
        exc = sqlite3.OperationalError("database is locked")
        assert "some/index.db" in str(
            translate_sqlite_error(exc, "some/index.db"))


class TestOpenTimeProbe:
    def test_garbage_file_raises_corrupt_at_open(self, tmp_path):
        path = tmp_path / "garbage.db"
        path.write_bytes(b"this is definitely not sqlite" * 64)
        with pytest.raises(CorruptIndexError) as excinfo:
            SQLiteStore(str(path))
        assert "garbage.db" in str(excinfo.value)

    def test_truncated_store_raises_at_open(self, tmp_path):
        path = tmp_path / "trunc.db"
        with SQLiteStore(str(path)) as store:
            store.put_postings("graph", "asthma", POSTINGS)
        data = path.read_bytes()
        path.write_bytes(data[:len(data) // 3] + b"\0" * 16)
        with pytest.raises(CorruptIndexError):
            SQLiteStore(str(path))

    def test_fresh_file_still_works(self, tmp_path):
        with SQLiteStore(str(tmp_path / "new.db")) as store:
            store.put_postings("graph", "a", POSTINGS)
            assert store.get_postings("graph", "a") == POSTINGS


class TestReadOnlyMode:
    def test_missing_file_rejected(self, tmp_path):
        missing = str(tmp_path / "missing.db")
        with pytest.raises(StorageError) as excinfo:
            SQLiteStore(missing, read_only=True)
        assert "missing.db" in str(excinfo.value)
        # Crucially, the open attempt must not create the file.
        import os
        assert not os.path.exists(missing)

    def test_memory_rejected(self):
        with pytest.raises(StorageError):
            SQLiteStore(":memory:", read_only=True)

    def test_reads_work_writes_fail(self, tmp_path):
        path = str(tmp_path / "ro.db")
        with SQLiteStore(path) as writer:
            writer.put_postings("graph", "asthma", POSTINGS)
            writer.put_metadata("strategy", "graph")
        with SQLiteStore(path, read_only=True) as reader:
            assert reader.get_postings("graph", "asthma") == POSTINGS
            assert reader.get_metadata("strategy") == "graph"
            with pytest.raises(StorageError):
                reader.put_metadata("strategy", "taxonomy")

    def test_foreign_sqlite_file_rejected(self, tmp_path):
        path = str(tmp_path / "foreign.db")
        connection = sqlite3.connect(path)
        connection.execute("CREATE TABLE unrelated (x INTEGER)")
        connection.commit()
        connection.close()
        with pytest.raises(CorruptIndexError) as excinfo:
            SQLiteStore(path, read_only=True)
        assert "missing tables" in str(excinfo.value)


class TestThreadSafety:
    def test_concurrent_readers_share_one_store(self, tmp_path):
        path = str(tmp_path / "threads.db")
        with SQLiteStore(path) as writer:
            for i in range(20):
                writer.put_postings("graph", f"kw{i:02d}",
                                    [(f"0.{i}", float(i + 1))])
        store = SQLiteStore(path, read_only=True)
        errors: list[BaseException] = []

        def read_loop() -> None:
            try:
                for _ in range(30):
                    for i in range(20):
                        keyword = f"kw{i:02d}"
                        postings = store.get_postings("graph", keyword)
                        assert postings == [(f"0.{i}", float(i + 1))]
                        assert store.posting_count("graph", keyword) == 1
                    assert len(list(store.keywords("graph"))) == 20
            except BaseException as exc:  # noqa: BLE001 - collected
                errors.append(exc)

        threads = [threading.Thread(target=read_loop) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        store.close()
        assert errors == []

    def test_concurrent_readers_and_writer(self, tmp_path):
        path = str(tmp_path / "rw.db")
        store = SQLiteStore(path)
        store.put_postings("graph", "stable", POSTINGS)
        errors: list[BaseException] = []

        def reader() -> None:
            try:
                for _ in range(50):
                    assert store.get_postings("graph",
                                              "stable") == POSTINGS
            except BaseException as exc:  # noqa: BLE001 - collected
                errors.append(exc)

        def writer() -> None:
            try:
                for i in range(50):
                    store.put_metadata("tick", str(i))
            except BaseException as exc:  # noqa: BLE001 - collected
                errors.append(exc)

        threads = [threading.Thread(target=reader) for _ in range(4)]
        threads.append(threading.Thread(target=writer))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        store.close()
        assert errors == []
