"""Backend differential: the compact/mmap path is byte-identical.

The gate the compact codec and the mmap container must pass: building
the same index into a :class:`MemoryStore` (pickle-era in-memory rows),
a :class:`SQLiteStore`, and an :class:`MmapStore` yields the *same
logical index* -- ``canonical_dump`` equal byte for byte -- and a fresh
engine serving DIL-cache misses from compact blocks ranks queries
identically (full and bounded top-k modes) to the eagerly built
engines.
"""

from __future__ import annotations

import pytest

from repro.core.config import RELATIONSHIPS, XRANK
from repro.core.query.engine import XOntoRankEngine
from repro.core.stats import CODEC_LAZY_LISTS
from repro.storage import (MemoryStore, MmapStore, SQLiteStore,
                           atomic_mmap_build, canonical_dump)

STRATEGIES = (XRANK, RELATIONSHIPS)
BACKENDS = ("memory", "sqlite", "mmap")


@pytest.fixture(scope="module")
def backend_stores(tmp_path_factory, engines):
    """``(backend, strategy) -> store``: the same index built through
    every backend (stores are single-strategy, like production)."""
    root = tmp_path_factory.mktemp("differential")
    stores = {}
    for strategy in STRATEGIES:
        memory = MemoryStore()
        sqlite = SQLiteStore(str(root / f"{strategy}.db"))
        mmap_path = str(root / f"{strategy}.mm")
        with atomic_mmap_build(mmap_path) as mmap_writer:
            for store in (memory, sqlite, mmap_writer):
                engines[strategy].build_index(store=store)
        stores[("memory", strategy)] = memory
        stores[("sqlite", strategy)] = sqlite
        stores[("mmap", strategy)] = MmapStore(mmap_path)
    yield stores
    for strategy in STRATEGIES:
        stores[("mmap", strategy)].close()
        stores[("sqlite", strategy)].close()


class TestCanonicalDump:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_memory_equals_sqlite(self, backend_stores, strategy):
        assert canonical_dump(backend_stores[("memory", strategy)],
                              [strategy]) \
            == canonical_dump(backend_stores[("sqlite", strategy)],
                              [strategy])

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_memory_equals_mmap(self, backend_stores, strategy):
        # The load-bearing assertion: every posting list decoded out of
        # compact XPB1 blocks (or raw fallback records) is *exactly*
        # the list the builder produced -- same Dewey strings, same
        # float bits, same order.
        assert canonical_dump(backend_stores[("memory", strategy)],
                              [strategy]) \
            == canonical_dump(backend_stores[("mmap", strategy)],
                              [strategy])

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_mmap_stores_real_blocks(self, backend_stores, strategy):
        # Guard against the differential passing vacuously through the
        # raw-record fallback: the corpus index must be all compact
        # blocks.
        per_strategy, raw, problems = \
            backend_stores[("mmap", strategy)].block_report()
        assert problems == []
        assert per_strategy.get(strategy, 0) > 0
        assert raw == 0, "corpus posting lists should all be encodable"


class TestQueryEquivalence:
    @pytest.fixture(scope="class")
    def queries(self, backend_stores):
        keywords = sorted(backend_stores[("mmap", XRANK)]
                          .keywords(XRANK))
        assert len(keywords) >= 4
        singles = [keywords[0], keywords[len(keywords) // 2],
                   keywords[-1]]
        pair = f"{keywords[1]} {keywords[-2]}"
        return singles + [pair]

    @pytest.fixture(scope="class")
    def served_engines(self, backend_stores, engines, cda_corpus,
                       synthetic_ontology):
        """Fresh engines (cold DIL cache) serving misses from the mmap
        and sqlite stores respectively."""
        served = {}
        for name in ("mmap", "sqlite"):
            for strategy in STRATEGIES:
                ontology = (synthetic_ontology
                            if strategy != XRANK else None)
                engine = XOntoRankEngine(
                    cda_corpus, ontology, strategy=strategy,
                    config=engines[strategy].config,
                    element_index=engines[strategy].element_index)
                engine.attach_read_store(
                    backend_stores[(name, strategy)])
                served[(name, strategy)] = engine
        return served

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_full_rankings_identical(self, engines, served_engines,
                                     queries, strategy):
        for query in queries:
            expected = engines[strategy].search(query)
            for backend in ("mmap", "sqlite"):
                got = served_engines[(backend, strategy)].search(query)
                assert [(r.dewey, r.score) for r in got] \
                    == [(r.dewey, r.score) for r in expected], \
                    (backend, strategy, query)

    @pytest.mark.parametrize("k", [1, 3, 10])
    def test_topk_equals_full_prefix_over_blocks(self, served_engines,
                                                 queries, k):
        # Bounded top-k over lazily decoded blocks must return the
        # exact prefix of the full ranking -- the doc_max sidecar only
        # prunes, never reorders.
        for strategy in STRATEGIES:
            engine = served_engines[("mmap", strategy)]
            for query in queries:
                full = engine.search(query)
                assert [(r.dewey, r.score)
                        for r in engine.search(query, k=k)] \
                    == [(r.dewey, r.score) for r in full[:k]]

    def test_blocks_actually_served_lazily(self, served_engines,
                                           queries):
        engine = served_engines[("mmap", XRANK)]
        engine.search(queries[0])
        assert engine.stats.value(CODEC_LAZY_LISTS) > 0
