"""Unit tests for the segment catalog and the merged read view."""

from __future__ import annotations

import json

import pytest

from repro.storage import (CATALOG_KEY, MemoryStore, SegmentCatalog,
                           SegmentRecord, SegmentView, load_catalog,
                           save_catalog, segment_namespace,
                           segment_view)
from repro.storage.errors import CorruptIndexError, StorageError
from repro.storage.segments import merged_keywords, merged_postings


def catalog_fixture():
    return SegmentCatalog(
        strategy="relationships", next_id=2, live=(1, 3),
        live_fingerprint="sha256:feed",
        segments=(
            SegmentRecord(0, "relationships", (1, 2), "sha256:aa"),
            SegmentRecord(1, "relationships.seg000001", (3,),
                          "sha256:bb"),
        ))


class TestCatalog:
    def test_namespace_of_base_segment_is_plain(self):
        assert segment_namespace("relationships", 0) == "relationships"
        assert segment_namespace("relationships", 7) == \
            "relationships.seg000007"

    def test_json_round_trip(self):
        catalog = catalog_fixture()
        assert SegmentCatalog.from_json(catalog.to_json()) == catalog

    def test_store_round_trip(self):
        store = MemoryStore()
        save_catalog(store, catalog_fixture())
        assert load_catalog(store) == catalog_fixture()

    def test_missing_catalog_is_none(self):
        assert load_catalog(MemoryStore()) is None

    def test_garbage_and_wrong_version_rejected(self):
        with pytest.raises(CorruptIndexError):
            SegmentCatalog.from_json("not json at all {")
        payload = json.loads(catalog_fixture().to_json())
        payload["version"] = 99
        with pytest.raises(CorruptIndexError):
            SegmentCatalog.from_json(json.dumps(payload))

    def test_derived_sets(self):
        catalog = catalog_fixture()
        assert catalog.live_set == frozenset({1, 3})
        assert catalog.segment_doc_ids() == frozenset({1, 2, 3})
        assert catalog.tombstone_count == 1

    def test_with_segment_appends_and_bumps_next_id(self):
        catalog = catalog_fixture()
        record = SegmentRecord(2, "relationships.seg000002", (5,),
                               "sha256:cc")
        grown = catalog.with_segment(record, (1, 3, 5), "sha256:new")
        assert grown.next_id == 3
        assert grown.segments[-1] is record
        assert grown.live_set == frozenset({1, 3, 5})
        # The original is immutable and untouched.
        assert catalog.next_id == 2


class TestSegmentView:
    def build_segmented_store(self):
        store = MemoryStore()
        store.put_postings("relationships", "fever",
                           [("1.0", 0.5), ("2.0", 0.25)])
        store.put_postings("relationships.seg000001", "fever",
                           [("3.0", 0.75)])
        store.put_postings("relationships.seg000001", "pain",
                           [("3.1", 0.5)])
        for doc_id in (1, 2, 3):
            store.put_document(doc_id, f"<doc id='{doc_id}'/>")
        save_catalog(store, catalog_fixture())
        return store

    def test_merges_segments_and_masks_tombstones(self):
        store = self.build_segmented_store()
        view = segment_view(store)
        postings = view.get_postings("relationships", "fever")
        # Document 2 is tombstoned; documents 1 and 3 merge in Dewey
        # order across the two segment namespaces.
        assert postings == [("1.0", 0.5), ("3.0", 0.75)]
        assert list(view.keywords("relationships")) == ["fever",
                                                        "pain"]
        assert sorted(view.document_ids()) == [1, 3]

    def test_view_is_read_only_and_hides_catalog_key(self):
        view = segment_view(self.build_segmented_store())
        with pytest.raises(StorageError):
            view.put_postings("relationships", "x", [("1.0", 1.0)])
        with pytest.raises(StorageError):
            view.put_document(9, "<doc/>")
        with pytest.raises(StorageError):
            view.delete_document(1)
        assert CATALOG_KEY not in set(view.metadata_keys())

    def test_wrapping_is_idempotent_and_plain_stores_pass_through(self):
        store = self.build_segmented_store()
        view = segment_view(store)
        assert isinstance(view, SegmentView)
        assert segment_view(view) is view
        plain = MemoryStore()
        assert segment_view(plain) is plain

    def test_merge_prefers_newest_segment_for_readded_doc(self):
        # A document removed and re-added lives in two segments; the
        # newest segment's postings win and no duplicates surface.
        store = MemoryStore()
        store.put_postings("relationships", "fever", [("1.0", 0.5)])
        store.put_postings("relationships.seg000001", "fever",
                           [("1.0", 0.5)])
        store.put_document(1, "<doc id='1'/>")
        catalog = SegmentCatalog(
            strategy="relationships", next_id=2, live=(1,),
            live_fingerprint="sha256:feed",
            segments=(
                SegmentRecord(0, "relationships", (1,), "sha256:aa"),
                SegmentRecord(1, "relationships.seg000001", (1,),
                              "sha256:bb"),
            ))
        save_catalog(store, catalog)
        assert merged_postings(store, catalog, "fever") == \
            [("1.0", 0.5)]
        assert list(merged_keywords(store, catalog)) == ["fever"]
