"""Unit tests for the index stores (memory and SQLite)."""

import os

import pytest

from repro.storage.interface import StorageError
from repro.storage.memory_store import MemoryStore
from repro.storage.sqlite_store import SQLiteStore

POSTINGS = [("0.1.2", 0.5), ("0.3", 1.0), ("2.0.1.4", 0.25)]


@pytest.fixture(params=["memory", "sqlite", "sqlite-file"])
def store(request, tmp_path):
    if request.param == "memory":
        yield MemoryStore()
    elif request.param == "sqlite":
        with SQLiteStore() as sqlite_store:
            yield sqlite_store
    else:
        path = str(tmp_path / "index.db")
        with SQLiteStore(path) as sqlite_store:
            yield sqlite_store


class TestPostings:
    def test_roundtrip(self, store):
        store.put_postings("graph", "asthma", POSTINGS)
        assert store.get_postings("graph", "asthma") == POSTINGS

    def test_missing_keyword_is_empty(self, store):
        assert store.get_postings("graph", "nope") == []

    def test_replace_semantics(self, store):
        store.put_postings("graph", "asthma", POSTINGS)
        store.put_postings("graph", "asthma", POSTINGS[:1])
        assert store.get_postings("graph", "asthma") == POSTINGS[:1]

    def test_strategies_namespaced(self, store):
        store.put_postings("graph", "asthma", POSTINGS)
        store.put_postings("taxonomy", "asthma", POSTINGS[:1])
        assert len(store.get_postings("graph", "asthma")) == 3
        assert len(store.get_postings("taxonomy", "asthma")) == 1

    def test_keywords_listing(self, store):
        store.put_postings("graph", "a", POSTINGS)
        store.put_postings("graph", "b", POSTINGS)
        store.put_postings("taxonomy", "c", POSTINGS)
        assert sorted(store.keywords("graph")) == ["a", "b"]

    def test_posting_count(self, store):
        store.put_postings("graph", "asthma", POSTINGS)
        assert store.posting_count("graph", "asthma") == 3
        assert store.posting_count("graph", "nope") == 0

    def test_order_preserved(self, store):
        reversed_postings = list(reversed(POSTINGS))
        store.put_postings("graph", "asthma", reversed_postings)
        assert store.get_postings("graph", "asthma") == reversed_postings


class TestDocuments:
    def test_roundtrip(self, store):
        store.put_document(3, "<doc/>")
        assert store.get_document(3) == "<doc/>"

    def test_missing_raises(self, store):
        with pytest.raises(StorageError):
            store.get_document(99)

    def test_ids_sorted(self, store):
        store.put_document(5, "<a/>")
        store.put_document(1, "<b/>")
        assert list(store.document_ids()) == [1, 5]

    def test_overwrite(self, store):
        store.put_document(1, "<a/>")
        store.put_document(1, "<b/>")
        assert store.get_document(1) == "<b/>"


class TestMetadata:
    def test_roundtrip(self, store):
        store.put_metadata("decay", "0.5")
        assert store.get_metadata("decay") == "0.5"

    def test_default(self, store):
        assert store.get_metadata("missing") is None
        assert store.get_metadata("missing", "x") == "x"


class TestSQLitePersistence:
    def test_survives_reopen(self, tmp_path):
        path = str(tmp_path / "persist.db")
        with SQLiteStore(path) as store:
            store.put_postings("graph", "asthma", POSTINGS)
            store.put_document(0, "<doc/>")
            store.put_metadata("strategy", "graph")
        assert os.path.exists(path)
        with SQLiteStore(path) as reopened:
            assert reopened.get_postings("graph", "asthma") == POSTINGS
            assert reopened.get_document(0) == "<doc/>"
            assert reopened.get_metadata("strategy") == "graph"
