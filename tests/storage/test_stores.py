"""Unit tests for the index stores (memory and SQLite)."""

import os

import pytest

from repro.storage.interface import StorageError, canonical_dump
from repro.storage.memory_store import MemoryStore
from repro.storage.sqlite_store import SQLiteStore

POSTINGS = [("0.1.2", 0.5), ("0.3", 1.0), ("2.0.1.4", 0.25)]


@pytest.fixture(params=["memory", "sqlite", "sqlite-file"])
def store(request, tmp_path):
    if request.param == "memory":
        yield MemoryStore()
    elif request.param == "sqlite":
        with SQLiteStore() as sqlite_store:
            yield sqlite_store
    else:
        path = str(tmp_path / "index.db")
        with SQLiteStore(path) as sqlite_store:
            yield sqlite_store


class TestPostings:
    def test_roundtrip(self, store):
        store.put_postings("graph", "asthma", POSTINGS)
        assert store.get_postings("graph", "asthma") == POSTINGS

    def test_missing_keyword_is_empty(self, store):
        assert store.get_postings("graph", "nope") == []

    def test_replace_semantics(self, store):
        store.put_postings("graph", "asthma", POSTINGS)
        store.put_postings("graph", "asthma", POSTINGS[:1])
        assert store.get_postings("graph", "asthma") == POSTINGS[:1]

    def test_strategies_namespaced(self, store):
        store.put_postings("graph", "asthma", POSTINGS)
        store.put_postings("taxonomy", "asthma", POSTINGS[:1])
        assert len(store.get_postings("graph", "asthma")) == 3
        assert len(store.get_postings("taxonomy", "asthma")) == 1

    def test_keywords_listing(self, store):
        store.put_postings("graph", "a", POSTINGS)
        store.put_postings("graph", "b", POSTINGS)
        store.put_postings("taxonomy", "c", POSTINGS)
        assert sorted(store.keywords("graph")) == ["a", "b"]

    def test_posting_count(self, store):
        store.put_postings("graph", "asthma", POSTINGS)
        assert store.posting_count("graph", "asthma") == 3
        assert store.posting_count("graph", "nope") == 0

    def test_order_preserved(self, store):
        reversed_postings = list(reversed(POSTINGS))
        store.put_postings("graph", "asthma", reversed_postings)
        assert store.get_postings("graph", "asthma") == reversed_postings


class TestDocuments:
    def test_roundtrip(self, store):
        store.put_document(3, "<doc/>")
        assert store.get_document(3) == "<doc/>"

    def test_missing_raises(self, store):
        with pytest.raises(StorageError):
            store.get_document(99)

    def test_ids_sorted(self, store):
        store.put_document(5, "<a/>")
        store.put_document(1, "<b/>")
        assert list(store.document_ids()) == [1, 5]

    def test_overwrite(self, store):
        store.put_document(1, "<a/>")
        store.put_document(1, "<b/>")
        assert store.get_document(1) == "<b/>"


class TestMetadata:
    def test_roundtrip(self, store):
        store.put_metadata("decay", "0.5")
        assert store.get_metadata("decay") == "0.5"

    def test_default(self, store):
        assert store.get_metadata("missing") is None
        assert store.get_metadata("missing", "x") == "x"

    def test_keys_listing(self, store):
        store.put_metadata("decay", "0.5")
        store.put_metadata("strategy", "graph")
        assert sorted(store.metadata_keys()) == ["decay", "strategy"]


class TestLegacyKeyNormalization:
    """Pre-quoting stores keyed multi-word phrases bare (``heart
    murmur``); ``XOntoDILIndex.load`` re-keys them to the canonical
    quoted form, so a save back to the *same* store must delete the
    stale bare row -- otherwise the postings exist twice and
    ``total_size_bytes`` doubles on the next load."""

    LEGACY_KEY = "heart murmur"
    CANONICAL_KEY = '"heart murmur"'

    def seed_legacy(self, store):
        store.put_postings("graph", self.LEGACY_KEY, POSTINGS)
        store.put_postings("graph", "asthma", POSTINGS[:1])

    def test_load_save_load_does_not_duplicate(self, store):
        from repro.core.index.dil import XOntoDILIndex
        self.seed_legacy(store)
        index = XOntoDILIndex.load(store, "graph")
        assert sorted(index.lists) == [self.CANONICAL_KEY, "asthma"]
        size = index.total_size_bytes()
        postings = index.total_postings()

        index.save(store)
        assert sorted(store.keywords("graph")) == \
            [self.CANONICAL_KEY, "asthma"]
        reloaded = XOntoDILIndex.load(store, "graph")
        assert sorted(reloaded.lists) == [self.CANONICAL_KEY, "asthma"]
        assert reloaded.total_postings() == postings
        assert reloaded.total_size_bytes() == size
        assert reloaded.lists[self.CANONICAL_KEY].encoded() == POSTINGS

    def test_save_only_migrates_keys_it_owns(self, store):
        """A bare key whose canonical form is *not* in the index (e.g.
        another load dropped it) must survive a save untouched."""
        from repro.core.index.dil import XOntoDILIndex
        store.put_postings("graph", "aortic stenosis", POSTINGS)
        index = XOntoDILIndex(strategy="graph")
        index.save(store)
        assert list(store.keywords("graph")) == ["aortic stenosis"]


class TestCanonicalDump:
    def test_backend_independent(self):
        memory, sqlite = MemoryStore(), SQLiteStore()
        for target in (memory, sqlite):
            target.put_postings("graph", "asthma", POSTINGS)
            target.put_document(0, "<doc/>")
            target.put_metadata("strategy", "graph")
        assert canonical_dump(memory, ["graph"]) == \
            canonical_dump(sqlite, ["graph"])
        sqlite.close()

    def test_insertion_order_independent(self):
        first, second = MemoryStore(), MemoryStore()
        first.put_postings("graph", "a", POSTINGS)
        first.put_postings("graph", "b", POSTINGS[:1])
        second.put_postings("graph", "b", POSTINGS[:1])
        second.put_postings("graph", "a", POSTINGS)
        assert canonical_dump(first, ["graph"]) == \
            canonical_dump(second, ["graph"])

    def test_detects_differences(self):
        first, second = MemoryStore(), MemoryStore()
        first.put_postings("graph", "a", POSTINGS)
        second.put_postings("graph", "a", POSTINGS[:1])
        assert canonical_dump(first, ["graph"]) != \
            canonical_dump(second, ["graph"])

    def test_provenance_keys_excluded_by_default(self):
        first, second = MemoryStore(), MemoryStore()
        first.put_metadata("build_workers", "1")
        second.put_metadata("build_workers", "8")
        assert canonical_dump(first, []) == canonical_dump(second, [])
        assert canonical_dump(first, [], include_provenance=True) != \
            canonical_dump(second, [], include_provenance=True)


class TestEngineRoundTrip:
    """build_index(store=...) → fresh engine → load_index → search must
    yield identical results on every backend, for serial and sharded
    (parallel) builds alike, with the build metadata intact."""

    QUERIES = ("asthma medications", '"bronchial structure" theophylline',
               "theophylline temperature")

    @pytest.fixture(scope="class")
    def corpus_and_ontology(self):
        from repro.cda.sample import build_figure1_document
        from repro.ontology.snomed import build_core_ontology
        from repro.xmldoc.model import Corpus
        return (Corpus([build_figure1_document()]), build_core_ontology())

    def _engine(self, corpus_and_ontology):
        from repro import RELATIONSHIPS, XOntoRankEngine
        corpus, ontology = corpus_and_ontology
        return XOntoRankEngine(corpus, ontology, strategy=RELATIONSHIPS)

    @pytest.mark.parametrize("backend", ["memory", "sqlite"])
    @pytest.mark.parametrize("workers", [1, 3])
    def test_roundtrip_search_identical(self, corpus_and_ontology,
                                        backend, workers, tmp_path):
        if backend == "memory":
            store = MemoryStore()
        else:
            store = SQLiteStore(str(tmp_path / f"rt-{workers}.db"))
        builder_engine = self._engine(corpus_and_ontology)
        index = builder_engine.build_index(store=store, workers=workers,
                                           parallel_mode="thread")
        assert len(index) > 0
        persisted = sum(1 for dil in index.lists.values() if dil)

        fresh = self._engine(corpus_and_ontology)
        assert fresh.load_index(store) == persisted
        # Vocabulary words are answered from the warmed cache: no
        # rebuild on the loaded path.
        loaded = fresh.search("asthma medications", k=10)
        built = builder_engine.search("asthma medications", k=10)
        assert fresh.cache_stats().misses == 0
        assert [(r.dewey, pytest.approx(r.score)) for r in built] == \
            [(r.dewey, r.score) for r in loaded]
        # Phrase queries (not in the vocabulary) rebuild identically.
        for query in self.QUERIES[1:]:
            built = builder_engine.search(query, k=10)
            loaded = fresh.search(query, k=10)
            assert [(r.dewey, pytest.approx(r.score)) for r in built] == \
                [(r.dewey, r.score) for r in loaded]
        store.close()

    @pytest.mark.parametrize("backend", ["memory", "sqlite"])
    def test_sharded_build_metadata_roundtrips(self, corpus_and_ontology,
                                               backend, tmp_path):
        if backend == "memory":
            store = MemoryStore()
        else:
            store = SQLiteStore(str(tmp_path / "meta.db"))
        engine = self._engine(corpus_and_ontology)
        engine.build_index(vocabulary={"asthma", "medications"},
                           store=store, workers=3,
                           parallel_mode="thread")
        assert store.get_metadata("strategy") == "relationships"
        assert store.get_metadata("build_workers") == "3"
        assert store.get_metadata("build_mode") == "thread"
        assert int(store.get_metadata("build_chunks")) >= 1
        assert {"build_chunks", "build_mode", "build_workers"} <= \
            set(store.metadata_keys())
        store.close()

    def test_serial_and_parallel_stores_byte_identical(
            self, corpus_and_ontology, tmp_path):
        serial_store = SQLiteStore(str(tmp_path / "serial.db"))
        parallel_store = SQLiteStore(str(tmp_path / "parallel.db"))
        self._engine(corpus_and_ontology).build_index(store=serial_store)
        self._engine(corpus_and_ontology).build_index(
            store=parallel_store, workers=4, parallel_mode="thread")
        assert canonical_dump(serial_store, ["relationships"]) == \
            canonical_dump(parallel_store, ["relationships"])
        serial_store.close()
        parallel_store.close()


class TestSQLitePersistence:
    def test_survives_reopen(self, tmp_path):
        path = str(tmp_path / "persist.db")
        with SQLiteStore(path) as store:
            store.put_postings("graph", "asthma", POSTINGS)
            store.put_document(0, "<doc/>")
            store.put_metadata("strategy", "graph")
        assert os.path.exists(path)
        with SQLiteStore(path) as reopened:
            assert reopened.get_postings("graph", "asthma") == POSTINGS
            assert reopened.get_document(0) == "<doc/>"
            assert reopened.get_metadata("strategy") == "graph"
