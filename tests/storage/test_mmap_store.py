"""Tests for the memory-mapped XMS1 store backend."""

import json
import struct
import threading
import zlib

import pytest

from repro.storage.codec import PostingBlock
from repro.storage.errors import (CorruptIndexError,
                                  IncompatibleIndexError, StorageError)
from repro.storage.mmap_store import (CONTAINER_VERSION, FILE_MAGIC,
                                      TRAILER_MAGIC, MmapStore,
                                      atomic_mmap_build,
                                      open_read_store,
                                      sniff_store_format,
                                      write_mmap_store)
from repro.storage.memory_store import MemoryStore
from repro.storage.sqlite_store import SQLiteStore

POSTINGS = [("0.1.2", 0.5), ("0.3", 1.0), ("2.0.1.4", 0.25)]
DOC = "<record><name>Jane Doe</name></record>"


@pytest.fixture
def store_path(tmp_path):
    path = str(tmp_path / "index.mm")
    with atomic_mmap_build(path) as writer:
        writer.put_postings("xrank", "diabetes", POSTINGS)
        writer.put_postings("xrank", "unsorted", list(reversed(POSTINGS)))
        writer.put_document(0, DOC)
        writer.put_document(7, "<other/>")
        writer.put_metadata("built_by", "test")
    return path


@pytest.fixture
def store(store_path):
    reader = MmapStore(store_path)
    yield reader
    reader.close()


class TestContract:
    def test_postings_round_trip(self, store):
        assert store.get_postings("xrank", "diabetes") == POSTINGS

    def test_raw_fallback_preserves_unsorted_lists(self, store):
        # Lists the codec cannot pack must still round-trip verbatim:
        # they are stored as raw JSON records instead of XPB1 blocks.
        assert store.get_postings("xrank", "unsorted") \
            == list(reversed(POSTINGS))
        assert store.get_posting_block("xrank", "unsorted") is None

    def test_missing_keyword_is_empty(self, store):
        assert store.get_postings("xrank", "absent") == []
        assert store.get_postings("other", "diabetes") == []

    def test_posting_count_from_toc(self, store):
        assert store.posting_count("xrank", "diabetes") == 3
        assert store.posting_count("xrank", "absent") == 0

    def test_keywords(self, store):
        assert sorted(store.keywords("xrank")) == ["diabetes", "unsorted"]
        assert list(store.keywords("other")) == []

    def test_documents(self, store):
        assert store.get_document(0) == DOC
        assert list(store.document_ids()) == [0, 7]
        with pytest.raises(StorageError, match="no stored document 3"):
            store.get_document(3)

    def test_metadata(self, store):
        assert store.get_metadata("built_by") == "test"
        assert store.get_metadata("absent", "fallback") == "fallback"
        assert "built_by" in list(store.metadata_keys())

    def test_posting_block_is_lazy_and_exact(self, store):
        block = store.get_posting_block("xrank", "diabetes")
        assert isinstance(block, PostingBlock)
        assert block.encoded() == POSTINGS
        assert block.doc_max_scores() == {0: 1.0, 2: 0.25}


class TestImmutability:
    def test_all_writes_rejected(self, store):
        with pytest.raises(StorageError, match="immutable"):
            store.put_postings("xrank", "new", POSTINGS)
        with pytest.raises(StorageError, match="immutable"):
            store.put_document(9, "<x/>")
        with pytest.raises(StorageError, match="immutable"):
            store.delete_document(0)
        with pytest.raises(StorageError, match="immutable"):
            store.put_metadata("k", "v")

    def test_error_names_the_rebuild_path(self, store):
        with pytest.raises(StorageError, match="--store-format mmap"):
            store.put_postings("xrank", "new", POSTINGS)


class TestLifecycle:
    def test_closed_store_rejects_reads(self, store_path):
        reader = MmapStore(store_path)
        reader.close()
        with pytest.raises(StorageError, match="closed"):
            reader.get_postings("xrank", "diabetes")
        with pytest.raises(StorageError, match="closed"):
            reader.get_document(0)
        reader.close()  # idempotent

    def test_blocks_outlive_the_store(self, store_path):
        # A PostingBlock holds a memoryview into the mapping; closing
        # the store must not invalidate it (pages are released when the
        # last block is collected).
        reader = MmapStore(store_path)
        block = reader.get_posting_block("xrank", "diabetes")
        reader.close()
        assert block.encoded() == POSTINGS

    def test_atomic_build_publishes_nothing_on_failure(self, tmp_path):
        path = str(tmp_path / "failed.mm")
        with pytest.raises(RuntimeError):
            with atomic_mmap_build(path) as writer:
                writer.put_postings("xrank", "diabetes", POSTINGS)
                raise RuntimeError("build interrupted")
        assert not (tmp_path / "failed.mm").exists()
        assert not (tmp_path / "failed.mm.building").exists()

    def test_empty_build_round_trips(self, tmp_path):
        path = str(tmp_path / "empty.mm")
        with atomic_mmap_build(path):
            pass
        reader = MmapStore(path)
        try:
            assert list(reader.keywords("xrank")) == []
            assert list(reader.document_ids()) == []
        finally:
            reader.close()


class TestCorruption:
    def test_truncated_file(self, store_path, tmp_path):
        data = open(store_path, "rb").read()
        bad = tmp_path / "trunc.mm"
        bad.write_bytes(data[:len(data) // 2])
        with pytest.raises(CorruptIndexError, match="trailer|truncat"):
            MmapStore(str(bad))

    def test_toc_crc_flip(self, store_path, tmp_path):
        data = bytearray(open(store_path, "rb").read())
        toc_offset, = struct.unpack_from("<Q", data, len(data) - 16)
        data[toc_offset] ^= 0x01
        bad = tmp_path / "crc.mm"
        bad.write_bytes(bytes(data))
        with pytest.raises(CorruptIndexError, match="checksum"):
            MmapStore(str(bad))

    def test_container_version_mismatch(self, store_path, tmp_path):
        data = bytearray(open(store_path, "rb").read())
        struct.pack_into("<I", data, 4, CONTAINER_VERSION + 1)
        bad = tmp_path / "vers.mm"
        bad.write_bytes(bytes(data))
        with pytest.raises(IncompatibleIndexError, match="container v2"):
            MmapStore(str(bad))

    def test_damaged_posting_block_localized_by_report(self, store_path,
                                                       tmp_path):
        # Flip one byte inside the diabetes block's payload; the TOC
        # still checks out, so open succeeds -- block_report must name
        # the single damaged record.
        good = MmapStore(store_path)
        entry = good._postings["xrank"]["diabetes"]
        good.close()
        data = bytearray(open(store_path, "rb").read())
        data[entry[0] + 16] ^= 0xFF  # first payload byte of the block
        bad_path = tmp_path / "block.mm"
        bad_path.write_bytes(bytes(data))
        bad = MmapStore(str(bad_path))
        try:
            per_strategy, raw, problems = bad.block_report()
            assert raw == 1  # the unsorted raw record is untouched
            assert len(problems) == 1
            assert "diabetes" in problems[0]
        finally:
            bad.close()

    def test_clean_store_reports_no_problems(self, store):
        per_strategy, raw, problems = store.block_report()
        assert per_strategy == {"xrank": 1}
        assert raw == 1
        assert problems == []

    def test_not_an_mmap_file(self, tmp_path):
        bogus = tmp_path / "bogus.mm"
        bogus.write_bytes(b"not a store" * 10)
        with pytest.raises(CorruptIndexError, match="magic"):
            MmapStore(str(bogus))


class TestConcurrency:
    def test_many_threads_share_one_reader(self, store):
        errors = []

        def hammer():
            try:
                for _ in range(200):
                    assert store.get_postings("xrank", "diabetes") \
                        == POSTINGS
                    block = store.get_posting_block("xrank", "diabetes")
                    assert block.doc_max_scores() == {0: 1.0, 2: 0.25}
                    assert store.get_document(0) == DOC
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []

    def test_two_processes_worth_of_readers(self, store_path):
        # Two independent opens of one file (the N-serving-processes
        # shape, in-process): both see identical data, neither's close
        # disturbs the other.
        first = MmapStore(store_path)
        second = MmapStore(store_path)
        try:
            assert first.get_postings("xrank", "diabetes") \
                == second.get_postings("xrank", "diabetes")
            first.close()
            assert second.get_document(0) == DOC
        finally:
            first.close()
            second.close()


class TestDetection:
    def test_sniff(self, store_path, tmp_path):
        assert sniff_store_format(store_path) == "mmap"
        db = str(tmp_path / "index.db")
        sqlite = SQLiteStore(db)
        sqlite.put_postings("xrank", "kw", POSTINGS)
        sqlite.close()
        assert sniff_store_format(db) == "sqlite"
        assert sniff_store_format(str(tmp_path / "missing")) == "unknown"
        text = tmp_path / "plain.txt"
        text.write_text("hello")
        assert sniff_store_format(str(text)) == "unknown"

    def test_open_read_store_picks_backend(self, store_path, tmp_path):
        mm = open_read_store(store_path)
        try:
            assert isinstance(mm, MmapStore)
        finally:
            mm.close()
        db = str(tmp_path / "index.db")
        writer = SQLiteStore(db)
        writer.put_postings("xrank", "kw", POSTINGS)
        writer.close()
        reader = open_read_store(db)
        try:
            assert isinstance(reader, SQLiteStore)
            assert reader.get_postings("xrank", "kw") == POSTINGS
        finally:
            reader.close()


class TestConversion:
    def test_write_mmap_store_copies_everything(self, tmp_path):
        source = MemoryStore()
        source.put_postings("xrank", "a", POSTINGS)
        source.put_postings("relationships", "b", [("1.2", 0.5)])
        source.put_document(3, DOC)
        source.put_metadata("k", "v")
        path = str(tmp_path / "converted.mm")
        write_mmap_store(path, source, ["xrank", "relationships"])
        reader = MmapStore(path)
        try:
            assert reader.get_postings("xrank", "a") == POSTINGS
            assert reader.get_postings("relationships", "b") \
                == [("1.2", 0.5)]
            assert reader.get_document(3) == DOC
            assert reader.get_metadata("k") == "v"
        finally:
            reader.close()

    def test_trailer_is_last_sixteen_bytes(self, store_path):
        data = open(store_path, "rb").read()
        assert data[:4] == FILE_MAGIC
        assert data[-4:] == TRAILER_MAGIC
        toc_offset, crc, _ = struct.unpack("<QI4s", data[-16:])
        toc = data[toc_offset:-16]
        assert zlib.crc32(toc) & 0xFFFFFFFF == crc
        json.loads(toc)  # the TOC is plain canonical JSON
