"""Integrity manifest round-trips, tamper detection, and crash-safe
builds (interrupted at every write)."""

import os

import pytest

from repro import RELATIONSHIPS, XOntoRankEngine
from repro.cda.sample import build_figure1_document
from repro.ontology.snomed import build_core_ontology
from repro.storage.errors import CorruptIndexError, StorageError
from repro.storage.faults import FaultInjectingStore
from repro.storage.manifest import (BUILD_COMPLETE_KEY,
                                    CHECKSUM_KEY_PREFIX,
                                    atomic_sqlite_build,
                                    corpus_fingerprint,
                                    manifest_strategies,
                                    postings_checksum, require_complete,
                                    store_checksum, verify_manifest)
from repro.storage.memory_store import MemoryStore
from repro.storage.sqlite_store import SQLiteStore
from repro.xmldoc.model import Corpus

VOCABULARY = {"asthma", "medications", "theophylline"}


@pytest.fixture(scope="module")
def corpus_and_ontology():
    return Corpus([build_figure1_document()]), build_core_ontology()


def make_engine(corpus_and_ontology) -> XOntoRankEngine:
    corpus, ontology = corpus_and_ontology
    return XOntoRankEngine(corpus, ontology, strategy=RELATIONSHIPS)


def built_store(corpus_and_ontology, store):
    make_engine(corpus_and_ontology).build_index(vocabulary=VOCABULARY,
                                                 store=store)
    return store


@pytest.fixture(params=["memory", "sqlite"])
def store(request, tmp_path, corpus_and_ontology):
    if request.param == "memory":
        yield built_store(corpus_and_ontology, MemoryStore())
    else:
        with SQLiteStore(str(tmp_path / "manifest.db")) as sqlite_store:
            yield built_store(corpus_and_ontology, sqlite_store)


class TestChecksums:
    def test_checksum_is_content_addressed(self):
        lists = {"a": [("0.1", 0.5)], "b": [("0.2", 1.0)]}
        assert postings_checksum(lists) == postings_checksum(dict(
            reversed(list(lists.items()))))
        assert postings_checksum(lists) != postings_checksum(
            {"a": [("0.1", 0.5)]})

    def test_store_checksum_backend_independent(self, tmp_path,
                                                corpus_and_ontology):
        memory = built_store(corpus_and_ontology, MemoryStore())
        with SQLiteStore(str(tmp_path / "cmp.db")) as sqlite_store:
            built_store(corpus_and_ontology, sqlite_store)
            assert store_checksum(memory, RELATIONSHIPS) == \
                store_checksum(sqlite_store, RELATIONSHIPS)

    def test_fingerprint_order_free(self):
        docs = [(0, "<a/>"), (1, "<b/>")]
        assert corpus_fingerprint(docs) == \
            corpus_fingerprint(reversed(docs))
        assert corpus_fingerprint(docs) != \
            corpus_fingerprint([(0, "<a/>"), (1, "<c/>")])


class TestManifestRoundTrip:
    def test_built_store_verifies_clean(self, store):
        report = verify_manifest(store)
        assert report.ok, report.problems
        assert report.strategies == {RELATIONSHIPS: 3}
        assert report.documents == 1
        assert manifest_strategies(store) == [RELATIONSHIPS]
        require_complete(store)  # must not raise

    def test_describe_mentions_ok(self, store):
        lines = verify_manifest(store).describe()
        assert any("OK" in line for line in lines)

    def test_tampered_postings_detected(self, store):
        store.put_postings(RELATIONSHIPS, "asthma", [("0.9.9", 9.9)])
        report = verify_manifest(store)
        assert not report.ok
        assert any("checksum mismatch" in p for p in report.problems)

    def test_deleted_posting_list_detected(self, store):
        store.put_postings(RELATIONSHIPS, "asthma", [])
        assert not verify_manifest(store).ok

    def test_tampered_document_detected(self, store):
        store.put_document(0, "<tampered/>")
        report = verify_manifest(store)
        assert any("fingerprint" in p for p in report.problems)

    def test_unset_marker_detected(self, store):
        store.put_metadata(BUILD_COMPLETE_KEY, "0")
        assert not verify_manifest(store).ok
        with pytest.raises(CorruptIndexError):
            require_complete(store)

    def test_bare_store_fails_verification(self):
        bare = MemoryStore()
        bare.put_postings(RELATIONSHIPS, "asthma", [("0.1", 0.5)])
        report = verify_manifest(bare)
        assert not report.ok
        with pytest.raises(CorruptIndexError):
            require_complete(bare)


class TestInterruptedBuilds:
    """Kill the build after every possible write: the surviving store
    must never be accepted by load_index or verify_manifest."""

    def total_writes(self, corpus_and_ontology) -> int:
        counter = FaultInjectingStore(MemoryStore())
        built_store(corpus_and_ontology, counter)
        return counter.writes

    def test_every_cut_point_is_rejected(self, corpus_and_ontology):
        total = self.total_writes(corpus_and_ontology)
        assert total > 5
        for cut in range(total):
            wrapped = FaultInjectingStore(MemoryStore(),
                                          fail_after_writes=cut)
            with pytest.raises(StorageError):
                built_store(corpus_and_ontology, wrapped)
            survivor = wrapped.inner
            assert not verify_manifest(survivor).ok, f"cut at {cut}"
            with pytest.raises(CorruptIndexError):
                make_engine(corpus_and_ontology).load_index(survivor)

    def test_uninterrupted_build_is_accepted(self, corpus_and_ontology):
        total = self.total_writes(corpus_and_ontology)
        wrapped = FaultInjectingStore(MemoryStore(),
                                      fail_after_writes=total)
        built_store(corpus_and_ontology, wrapped)
        assert verify_manifest(wrapped.inner).ok
        loaded = make_engine(corpus_and_ontology).load_index(
            wrapped.inner)
        assert loaded == 3


class TestAtomicSQLiteBuild:
    def test_success_publishes_and_cleans_temp(self, tmp_path,
                                               corpus_and_ontology):
        path = str(tmp_path / "atomic.db")
        with atomic_sqlite_build(path) as store:
            built_store(corpus_and_ontology, store)
            assert not os.path.exists(path)  # nothing published yet
        assert os.path.exists(path)
        assert not os.path.exists(path + ".building")
        with SQLiteStore(path, read_only=True) as reopened:
            assert verify_manifest(reopened).ok

    def test_failure_leaves_no_file(self, tmp_path):
        path = str(tmp_path / "failed.db")
        with pytest.raises(RuntimeError, match="boom"):
            with atomic_sqlite_build(path) as store:
                store.put_metadata("partial", "1")
                raise RuntimeError("boom")
        assert not os.path.exists(path)
        assert not os.path.exists(path + ".building")

    def test_failure_preserves_previous_index(self, tmp_path,
                                              corpus_and_ontology):
        path = str(tmp_path / "stable.db")
        with atomic_sqlite_build(path) as store:
            built_store(corpus_and_ontology, store)
        checksum_key = CHECKSUM_KEY_PREFIX + RELATIONSHIPS
        with SQLiteStore(path, read_only=True) as before:
            original = before.get_metadata(checksum_key)
        with pytest.raises(RuntimeError):
            with atomic_sqlite_build(path) as store:
                store.put_metadata("junk", "1")
                raise RuntimeError("interrupted rebuild")
        with SQLiteStore(path, read_only=True) as after:
            assert after.get_metadata(checksum_key) == original
            assert after.get_metadata("junk") is None
            assert verify_manifest(after).ok

    def test_stale_temp_file_discarded(self, tmp_path,
                                       corpus_and_ontology):
        path = str(tmp_path / "fresh.db")
        with open(path + ".building", "w", encoding="utf-8") as handle:
            handle.write("stale garbage from a killed build")
        with atomic_sqlite_build(path) as store:
            built_store(corpus_and_ontology, store)
        with SQLiteStore(path, read_only=True) as reopened:
            assert verify_manifest(reopened).ok
