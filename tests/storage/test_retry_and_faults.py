"""RetryingStore backoff behavior and the FaultInjectingStore chaos
decorator it is tested against."""

import pytest

from repro.core.stats import (FAULTS_CRASHES, FAULTS_LATENCY,
                              FAULTS_TRANSIENT, RETRY_ATTEMPTS,
                              RETRY_GIVEUPS, RETRY_RECOVERIES,
                              StatsRegistry)
from repro.storage.errors import (CorruptIndexError, StorageError,
                                  TransientStorageError)
from repro.storage.faults import CORRUPT_DEWEY, FaultInjectingStore
from repro.storage.memory_store import MemoryStore
from repro.storage.retrying import RetryingStore

POSTINGS = [("0.1.2", 0.5), ("0.3", 1.0)]


class FlakyStore(MemoryStore):
    """Fails the first ``failures`` guarded calls, then behaves."""

    def __init__(self, failures: int) -> None:
        super().__init__()
        self.remaining = failures
        self.calls = 0

    def get_postings(self, strategy, keyword):
        self.calls += 1
        if self.remaining > 0:
            self.remaining -= 1
            raise TransientStorageError("flaky")
        return super().get_postings(strategy, keyword)


def seeded_inner(**kwargs) -> FaultInjectingStore:
    inner = MemoryStore()
    inner.put_postings("graph", "asthma", POSTINGS)
    inner.put_document(0, "<doc/>")
    inner.put_metadata("strategy", "graph")
    return FaultInjectingStore(inner, **kwargs)


class TestRetryingStore:
    def test_recovers_from_transient_faults(self):
        stats = StatsRegistry()
        flaky = FlakyStore(failures=2)
        flaky.put_postings("graph", "asthma", POSTINGS)
        sleeps: list[float] = []
        store = RetryingStore(flaky, max_attempts=4, stats=stats,
                              sleep=sleeps.append)
        assert store.get_postings("graph", "asthma") == POSTINGS
        assert flaky.calls == 3
        assert stats.value(RETRY_ATTEMPTS) == 2
        assert stats.value(RETRY_RECOVERIES) == 1
        assert stats.value(RETRY_GIVEUPS) == 0
        assert len(sleeps) == 2

    def test_gives_up_after_budget(self):
        stats = StatsRegistry()
        flaky = FlakyStore(failures=100)
        store = RetryingStore(flaky, max_attempts=3, stats=stats,
                              sleep=lambda _: None)
        with pytest.raises(TransientStorageError):
            store.get_postings("graph", "asthma")
        assert flaky.calls == 3
        assert stats.value(RETRY_ATTEMPTS) == 3
        assert stats.value(RETRY_GIVEUPS) == 1

    def test_backoff_grows_and_is_bounded(self):
        flaky = FlakyStore(failures=5)
        flaky.put_postings("graph", "asthma", POSTINGS)
        sleeps: list[float] = []
        store = RetryingStore(flaky, max_attempts=6, base_delay=0.1,
                              max_delay=0.35, jitter=0.0,
                              sleep=sleeps.append)
        store.get_postings("graph", "asthma")
        assert sleeps == pytest.approx([0.1, 0.2, 0.35, 0.35, 0.35])

    def test_jitter_is_deterministic_per_seed(self):
        def schedule(seed: int) -> list[float]:
            flaky = FlakyStore(failures=4)
            flaky.put_postings("graph", "asthma", POSTINGS)
            sleeps: list[float] = []
            RetryingStore(flaky, max_attempts=6, seed=seed,
                          sleep=sleeps.append).get_postings("graph",
                                                            "asthma")
            return sleeps

        assert schedule(7) == schedule(7)
        assert schedule(7) != schedule(8)

    def test_non_transient_errors_not_retried(self):
        class BrokenStore(MemoryStore):
            def get_postings(self, strategy, keyword):
                raise CorruptIndexError("damaged")

        stats = StatsRegistry()
        store = RetryingStore(BrokenStore(), stats=stats,
                              sleep=lambda _: None)
        with pytest.raises(CorruptIndexError):
            store.get_postings("graph", "asthma")
        assert stats.value(RETRY_ATTEMPTS) == 0

    def test_iterator_methods_materialize(self):
        inner = MemoryStore()
        inner.put_postings("graph", "a", POSTINGS)
        inner.put_document(1, "<a/>")
        inner.put_metadata("k", "v")
        store = RetryingStore(inner, sleep=lambda _: None)
        assert list(store.keywords("graph")) == ["a"]
        assert list(store.document_ids()) == [1]
        assert list(store.metadata_keys()) == ["k"]

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            RetryingStore(MemoryStore(), max_attempts=0)
        with pytest.raises(ValueError):
            RetryingStore(MemoryStore(), jitter=-0.1)


class TestFaultInjectingStore:
    def test_transient_faults_follow_seed(self):
        def fault_pattern(seed: int) -> list[bool]:
            store = seeded_inner(seed=seed, transient_rate=0.5)
            pattern = []
            for _ in range(30):
                try:
                    store.get_postings("graph", "asthma")
                    pattern.append(False)
                except TransientStorageError:
                    pattern.append(True)
            return pattern

        assert fault_pattern(3) == fault_pattern(3)
        assert any(fault_pattern(3))
        assert not all(fault_pattern(3))

    def test_transient_counter(self):
        stats = StatsRegistry()
        store = seeded_inner(seed=1, transient_rate=0.5, stats=stats)
        observed = 0
        for _ in range(40):
            try:
                store.get_postings("graph", "asthma")
            except TransientStorageError:
                observed += 1
        assert stats.value(FAULTS_TRANSIENT) == observed > 0

    def test_corrupt_keywords_mangle_postings(self):
        store = seeded_inner(corrupt_keywords={"asthma"})
        postings = store.get_postings("graph", "asthma")
        assert all(dewey == CORRUPT_DEWEY for dewey, _ in postings)
        # The mangled Dewey must be undecodable downstream.
        from repro.xmldoc.dewey import DeweyID
        with pytest.raises(ValueError):
            DeweyID.parse(postings[0][0])

    def test_latency_injection_counts_sleeps(self):
        sleeps: list[float] = []
        stats = StatsRegistry()
        store = seeded_inner(latency=0.01, stats=stats,
                             sleep=sleeps.append)
        store.get_postings("graph", "asthma")
        store.get_metadata("strategy")
        assert sleeps == pytest.approx([0.01, 0.01])
        assert stats.value(FAULTS_LATENCY) == 2

    def test_fail_after_writes_simulates_crash(self):
        stats = StatsRegistry()
        store = FaultInjectingStore(MemoryStore(), fail_after_writes=2,
                                    stats=stats)
        store.put_metadata("a", "1")
        store.put_document(0, "<doc/>")
        with pytest.raises(StorageError):
            store.put_postings("graph", "kw", POSTINGS)
        # Permanent: every later write keeps failing, like a dead disk.
        with pytest.raises(StorageError):
            store.put_metadata("b", "2")
        assert store.writes == 2
        assert stats.value(FAULTS_CRASHES) == 2

    def test_operations_filter_limits_blast_radius(self):
        store = seeded_inner(seed=0, transient_rate=0.99,
                             operations={"get_document"})
        # get_postings is outside the filter: never faulted.
        for _ in range(20):
            assert store.get_postings("graph", "asthma") == POSTINGS
        with pytest.raises(TransientStorageError):
            for _ in range(20):
                store.get_document(0)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            FaultInjectingStore(MemoryStore(), transient_rate=1.0)
        with pytest.raises(ValueError):
            FaultInjectingStore(MemoryStore(), fail_after_writes=-1)


class TestRetryOverFaults:
    """The two decorators compose: retries absorb injected faults."""

    def test_composed_reads_always_succeed(self):
        stats = StatsRegistry()
        store = RetryingStore(
            seeded_inner(seed=11, transient_rate=0.3, stats=stats),
            max_attempts=8, stats=stats, sleep=lambda _: None)
        for _ in range(50):
            assert store.get_postings("graph", "asthma") == POSTINGS
        assert stats.value(FAULTS_TRANSIENT) > 0
        assert stats.value(RETRY_RECOVERIES) > 0
        assert stats.value(RETRY_GIVEUPS) == 0
