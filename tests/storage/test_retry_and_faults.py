"""RetryingStore backoff behavior and the FaultInjectingStore chaos
decorator it is tested against."""

import pytest

from repro.core.stats import (FAULTS_CRASHES, FAULTS_LATENCY,
                              FAULTS_TRANSIENT, RETRY_ATTEMPTS,
                              RETRY_BUDGET_EXHAUSTED, RETRY_GIVEUPS,
                              RETRY_RECOVERIES, StatsRegistry)
from repro.storage.errors import (CorruptIndexError, StorageError,
                                  TransientStorageError)
from repro.storage.faults import CORRUPT_DEWEY, FaultInjectingStore
from repro.storage.memory_store import MemoryStore
from repro.storage.retrying import RetryingStore

POSTINGS = [("0.1.2", 0.5), ("0.3", 1.0)]


class FlakyStore(MemoryStore):
    """Fails the first ``failures`` guarded calls, then behaves."""

    def __init__(self, failures: int) -> None:
        super().__init__()
        self.remaining = failures
        self.calls = 0

    def get_postings(self, strategy, keyword):
        self.calls += 1
        if self.remaining > 0:
            self.remaining -= 1
            raise TransientStorageError("flaky")
        return super().get_postings(strategy, keyword)


def seeded_inner(**kwargs) -> FaultInjectingStore:
    inner = MemoryStore()
    inner.put_postings("graph", "asthma", POSTINGS)
    inner.put_document(0, "<doc/>")
    inner.put_metadata("strategy", "graph")
    return FaultInjectingStore(inner, **kwargs)


class TestRetryingStore:
    def test_recovers_from_transient_faults(self):
        stats = StatsRegistry()
        flaky = FlakyStore(failures=2)
        flaky.put_postings("graph", "asthma", POSTINGS)
        sleeps: list[float] = []
        store = RetryingStore(flaky, max_attempts=4, stats=stats,
                              sleep=sleeps.append)
        assert store.get_postings("graph", "asthma") == POSTINGS
        assert flaky.calls == 3
        assert stats.value(RETRY_ATTEMPTS) == 2
        assert stats.value(RETRY_RECOVERIES) == 1
        assert stats.value(RETRY_GIVEUPS) == 0
        assert len(sleeps) == 2

    def test_gives_up_after_budget(self):
        stats = StatsRegistry()
        flaky = FlakyStore(failures=100)
        store = RetryingStore(flaky, max_attempts=3, stats=stats,
                              sleep=lambda _: None)
        with pytest.raises(TransientStorageError):
            store.get_postings("graph", "asthma")
        assert flaky.calls == 3
        assert stats.value(RETRY_ATTEMPTS) == 3
        assert stats.value(RETRY_GIVEUPS) == 1

    def test_backoff_grows_and_is_bounded(self):
        flaky = FlakyStore(failures=5)
        flaky.put_postings("graph", "asthma", POSTINGS)
        sleeps: list[float] = []
        store = RetryingStore(flaky, max_attempts=6, base_delay=0.1,
                              max_delay=0.35, jitter=0.0,
                              sleep=sleeps.append)
        store.get_postings("graph", "asthma")
        assert sleeps == pytest.approx([0.1, 0.2, 0.35, 0.35, 0.35])

    def test_jitter_is_deterministic_per_seed(self):
        def schedule(seed: int) -> list[float]:
            flaky = FlakyStore(failures=4)
            flaky.put_postings("graph", "asthma", POSTINGS)
            sleeps: list[float] = []
            RetryingStore(flaky, max_attempts=6, seed=seed,
                          sleep=sleeps.append).get_postings("graph",
                                                            "asthma")
            return sleeps

        assert schedule(7) == schedule(7)
        assert schedule(7) != schedule(8)

    def test_non_transient_errors_not_retried(self):
        class BrokenStore(MemoryStore):
            def get_postings(self, strategy, keyword):
                raise CorruptIndexError("damaged")

        stats = StatsRegistry()
        store = RetryingStore(BrokenStore(), stats=stats,
                              sleep=lambda _: None)
        with pytest.raises(CorruptIndexError):
            store.get_postings("graph", "asthma")
        assert stats.value(RETRY_ATTEMPTS) == 0

    def test_iterator_methods_materialize(self):
        inner = MemoryStore()
        inner.put_postings("graph", "a", POSTINGS)
        inner.put_document(1, "<a/>")
        inner.put_metadata("k", "v")
        store = RetryingStore(inner, sleep=lambda _: None)
        assert list(store.keywords("graph")) == ["a"]
        assert list(store.document_ids()) == [1]
        assert list(store.metadata_keys()) == ["k"]

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            RetryingStore(MemoryStore(), max_attempts=0)
        with pytest.raises(ValueError):
            RetryingStore(MemoryStore(), jitter=-0.1)
        with pytest.raises(ValueError):
            RetryingStore(MemoryStore(), budget=-0.5)


class ManualClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class TestRetryTimeBudget:
    """The serving-layer contract: backoff sleeps never overshoot the
    operation's explicit budget or the ambient request deadline."""

    def make(self, budget=None, clock=None):
        stats = StatsRegistry()
        flaky = FlakyStore(failures=100)
        sleeps: list[float] = []
        store = RetryingStore(flaky, max_attempts=10, base_delay=0.1,
                              jitter=0.0, stats=stats,
                              sleep=sleeps.append, budget=budget,
                              clock=clock if clock is not None
                              else ManualClock())
        return store, flaky, sleeps, stats

    def test_budget_cuts_retrying_short(self):
        # Deterministic schedule (jitter=0, frozen clock): sleeps of
        # 0.1 + 0.2 == 0.3 fit a 0.35 s budget, the next (0.4) would
        # overshoot -- it must be skipped and the error re-raised.
        store, flaky, sleeps, stats = self.make(budget=0.35)
        with pytest.raises(TransientStorageError):
            store.get_postings("graph", "asthma")
        assert sleeps == pytest.approx([0.1, 0.2])
        assert flaky.calls == 3  # 2 sleeps -> 3 attempts, not 10
        assert stats.value(RETRY_BUDGET_EXHAUSTED) == 1
        assert stats.value(RETRY_GIVEUPS) == 1

    def test_budget_boundary_pause_equal_to_allowance_gives_up(self):
        # Boundary: a pause exactly equal to the remaining allowance
        # is refused (sleeping to the very edge leaves the caller
        # nothing to act in).
        store, flaky, sleeps, stats = self.make(budget=0.1)
        with pytest.raises(TransientStorageError):
            store.get_postings("graph", "asthma")
        assert sleeps == []  # first pause (0.1) == budget: refused
        assert flaky.calls == 1
        assert stats.value(RETRY_BUDGET_EXHAUSTED) == 1

    def test_budget_measures_elapsed_time_not_just_sleeps(self):
        # The inner call itself may burn the budget: each attempt
        # advances the clock by 0.2 s, so a 0.25 s budget affords no
        # backoff after the first (slow) failing attempt.
        clock = ManualClock()

        class SlowFlaky(FlakyStore):
            def get_postings(self, strategy, keyword):
                clock.now += 0.2
                return super().get_postings(strategy, keyword)

        stats = StatsRegistry()
        flaky = SlowFlaky(failures=100)
        sleeps: list[float] = []
        store = RetryingStore(flaky, max_attempts=10, base_delay=0.1,
                              jitter=0.0, stats=stats,
                              sleep=sleeps.append, budget=0.25,
                              clock=clock)
        with pytest.raises(TransientStorageError):
            store.get_postings("graph", "asthma")
        assert sleeps == []  # 0.2 elapsed leaves 0.05 < the 0.1 pause
        assert flaky.calls == 1

    def test_ambient_deadline_bounds_sleeps(self):
        from repro.core.deadline import Deadline, deadline_scope
        clock = ManualClock()
        store, flaky, sleeps, stats = self.make(clock=clock)
        with deadline_scope(Deadline.after(0.35, clock=clock)):
            with pytest.raises(TransientStorageError):
                store.get_postings("graph", "asthma")
        assert sleeps == pytest.approx([0.1, 0.2])
        assert stats.value(RETRY_BUDGET_EXHAUSTED) == 1
        # Outside the scope the same store retries to exhaustion.
        flaky2 = FlakyStore(failures=100)
        unbounded = RetryingStore(flaky2, max_attempts=4, jitter=0.0,
                                  sleep=lambda _: None,
                                  clock=ManualClock())
        with pytest.raises(TransientStorageError):
            unbounded.get_postings("graph", "asthma")
        assert flaky2.calls == 4

    def test_binding_constraint_is_the_minimum(self):
        # Budget generous, ambient deadline tight: the deadline wins.
        from repro.core.deadline import Deadline, deadline_scope
        clock = ManualClock()
        store, flaky, sleeps, _ = self.make(budget=100.0, clock=clock)
        with deadline_scope(Deadline.after(0.05, clock=clock)):
            with pytest.raises(TransientStorageError):
                store.get_postings("graph", "asthma")
        assert sleeps == []
        assert flaky.calls == 1


class TestFaultInjectingStore:
    def test_transient_faults_follow_seed(self):
        def fault_pattern(seed: int) -> list[bool]:
            store = seeded_inner(seed=seed, transient_rate=0.5)
            pattern = []
            for _ in range(30):
                try:
                    store.get_postings("graph", "asthma")
                    pattern.append(False)
                except TransientStorageError:
                    pattern.append(True)
            return pattern

        assert fault_pattern(3) == fault_pattern(3)
        assert any(fault_pattern(3))
        assert not all(fault_pattern(3))

    def test_transient_counter(self):
        stats = StatsRegistry()
        store = seeded_inner(seed=1, transient_rate=0.5, stats=stats)
        observed = 0
        for _ in range(40):
            try:
                store.get_postings("graph", "asthma")
            except TransientStorageError:
                observed += 1
        assert stats.value(FAULTS_TRANSIENT) == observed > 0

    def test_corrupt_keywords_mangle_postings(self):
        store = seeded_inner(corrupt_keywords={"asthma"})
        postings = store.get_postings("graph", "asthma")
        assert all(dewey == CORRUPT_DEWEY for dewey, _ in postings)
        # The mangled Dewey must be undecodable downstream.
        from repro.xmldoc.dewey import DeweyID
        with pytest.raises(ValueError):
            DeweyID.parse(postings[0][0])

    def test_latency_injection_counts_sleeps(self):
        sleeps: list[float] = []
        stats = StatsRegistry()
        store = seeded_inner(latency=0.01, stats=stats,
                             sleep=sleeps.append)
        store.get_postings("graph", "asthma")
        store.get_metadata("strategy")
        assert sleeps == pytest.approx([0.01, 0.01])
        assert stats.value(FAULTS_LATENCY) == 2

    def test_fail_after_writes_simulates_crash(self):
        stats = StatsRegistry()
        store = FaultInjectingStore(MemoryStore(), fail_after_writes=2,
                                    stats=stats)
        store.put_metadata("a", "1")
        store.put_document(0, "<doc/>")
        with pytest.raises(StorageError):
            store.put_postings("graph", "kw", POSTINGS)
        # Permanent: every later write keeps failing, like a dead disk.
        with pytest.raises(StorageError):
            store.put_metadata("b", "2")
        assert store.writes == 2
        assert stats.value(FAULTS_CRASHES) == 2

    def test_operations_filter_limits_blast_radius(self):
        store = seeded_inner(seed=0, transient_rate=0.99,
                             operations={"get_document"})
        # get_postings is outside the filter: never faulted.
        for _ in range(20):
            assert store.get_postings("graph", "asthma") == POSTINGS
        with pytest.raises(TransientStorageError):
            for _ in range(20):
                store.get_document(0)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            FaultInjectingStore(MemoryStore(), transient_rate=1.0)
        with pytest.raises(ValueError):
            FaultInjectingStore(MemoryStore(), fail_after_writes=-1)


class TestRetryOverFaults:
    """The two decorators compose: retries absorb injected faults."""

    def test_composed_reads_always_succeed(self):
        stats = StatsRegistry()
        store = RetryingStore(
            seeded_inner(seed=11, transient_rate=0.3, stats=stats),
            max_attempts=8, stats=stats, sleep=lambda _: None)
        for _ in range(50):
            assert store.get_postings("graph", "asthma") == POSTINGS
        assert stats.value(FAULTS_TRANSIENT) > 0
        assert stats.value(RETRY_RECOVERIES) > 0
        assert stats.value(RETRY_GIVEUPS) == 0
