"""Unit and property tests for the compact posting codec (XPB1)."""

import struct
import zlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.codec import (FORMAT_VERSION, HEADER_SIZE, MAGIC,
                                 PostingBlock, UnencodablePostings,
                                 decode_postings, encode_postings)
from repro.storage.errors import (CorruptIndexError,
                                  IncompatibleIndexError)

POSTINGS = [("0.1.2", 0.5), ("0.3", 1.0), ("2.0.1.4", 0.25),
            ("2.0.2", 0.75), ("7", 0.125)]


class TestRoundTrip:
    def test_exact(self):
        assert decode_postings(encode_postings(POSTINGS)) == POSTINGS

    def test_empty_list(self):
        block = encode_postings([])
        assert decode_postings(block) == []
        reader = PostingBlock(block)
        assert reader.posting_count == 0
        assert reader.doc_max_scores() == {}

    def test_single_root_posting(self):
        assert decode_postings(encode_postings([("5", 1.0)])) \
            == [("5", 1.0)]

    def test_scores_bitwise_exact(self):
        # Scores are stored as raw IEEE-754 doubles: the decode must
        # reproduce the exact float, including awkward ones -- the
        # canonical_dump byte-identity gate depends on it.
        awkward = [("0", 0.1), ("1", 1/3), ("2", 1e-308),
                   ("3", 1.7976931348623157e308), ("4", 5e-324)]
        out = decode_postings(encode_postings(awkward))
        assert [s.hex() for _, s in out] \
            == [s.hex() for _, s in awkward]

    def test_deep_and_wide_paths(self):
        postings = [("3." + ".".join(["0"] * 40), 0.5),
                    ("3." + ".".join(["0"] * 39 + ["1"]), 0.25),
                    ("3.1000000", 0.125),
                    ("4." + ".".join(str(i) for i in range(20)), 1.0)]
        postings.sort(key=lambda p: [int(x) for x in p[0].split(".")])
        assert decode_postings(encode_postings(postings)) == postings


class TestDirectory:
    def test_doc_max_scores_without_decoding(self):
        reader = PostingBlock(encode_postings(POSTINGS))
        assert reader.doc_max_scores() == {0: 1.0, 2: 0.75, 7: 0.125}

    def test_doc_ids_and_counts(self):
        reader = PostingBlock(encode_postings(POSTINGS))
        assert reader.doc_ids() == [0, 2, 7]
        assert reader.doc_count == 3
        assert reader.posting_count == 5

    def test_doc_postings_decodes_one_run(self):
        reader = PostingBlock(encode_postings(POSTINGS))
        assert reader.doc_postings(2) == [((0, 1, 4), 0.25),
                                          ((0, 2), 0.75)]
        assert reader.doc_postings(7) == [((), 0.125)]
        assert reader.doc_postings(99) == []

    def test_size_bytes_matches_block_length(self):
        block = encode_postings(POSTINGS)
        assert PostingBlock(block).size_bytes() == len(block)

    def test_delta_encoding_compresses_long_runs(self):
        # 2000 sibling paths under one document share long prefixes;
        # the delta encoding should land well under the textual form.
        postings = [(f"12.4.7.{i}", 0.5) for i in range(2000)]
        text_bytes = sum(len(dewey) + 8 for dewey, _ in postings)
        assert len(encode_postings(postings)) < text_bytes * 0.8


class TestPreconditions:
    def test_unsorted_rejected(self):
        with pytest.raises(UnencodablePostings):
            encode_postings([("0.3", 1.0), ("0.1.2", 0.5)])

    def test_duplicate_rejected(self):
        with pytest.raises(UnencodablePostings):
            encode_postings([("0.3", 1.0), ("0.3", 0.5)])

    def test_non_canonical_dewey_rejected(self):
        for bad in ("01.2", "1..2", "-1.2", "1.2 ", "a.b", ""):
            with pytest.raises(UnencodablePostings):
                encode_postings([(bad, 1.0)])

    def test_prefix_order_is_respected(self):
        # "0.1" < "0.1.0" in Dewey order; the codec must accept it.
        postings = [("0.1", 0.5), ("0.1.0", 0.25)]
        assert decode_postings(encode_postings(postings)) == postings


class TestCorruption:
    def test_short_buffer(self):
        with pytest.raises(CorruptIndexError, match="header"):
            PostingBlock(b"XPB1\x01")

    def test_bad_magic(self):
        block = bytearray(encode_postings(POSTINGS))
        block[:4] = b"NOPE"
        with pytest.raises(CorruptIndexError, match="magic"):
            PostingBlock(bytes(block))

    def test_version_mismatch_is_incompatible(self):
        block = bytearray(encode_postings(POSTINGS))
        block[4] = FORMAT_VERSION + 1
        with pytest.raises(IncompatibleIndexError, match="format v2"):
            PostingBlock(bytes(block))

    def test_truncated_payload(self):
        block = encode_postings(POSTINGS)
        with pytest.raises(CorruptIndexError, match="truncated"):
            PostingBlock(block[:-3])

    def test_every_flipped_payload_byte_is_caught_by_crc(self):
        block = encode_postings(POSTINGS)
        for offset in range(HEADER_SIZE, len(block)):
            damaged = bytearray(block)
            damaged[offset] ^= 0xFF
            with pytest.raises(CorruptIndexError):
                PostingBlock(bytes(damaged))

    def test_crc_collision_still_structurally_validated(self):
        # Forge a block whose header checksum matches a garbage
        # payload: the directory/run validation must still reject it.
        payload = b"\x05\x05" + b"\xff" * 40
        header = struct.pack("<4sB3sII", MAGIC, FORMAT_VERSION,
                             b"\x00\x00\x00",
                             zlib.crc32(payload) & 0xFFFFFFFF,
                             len(payload))
        with pytest.raises(CorruptIndexError):
            PostingBlock(header + payload)


# ----------------------------------------------------------------------
# Property: arbitrary sorted canonical lists round-trip exactly.
# ----------------------------------------------------------------------
_scores = st.floats(min_value=0.0, max_value=100.0, allow_nan=False)
_deweys = st.tuples(
    st.integers(min_value=0, max_value=500),
    st.lists(st.integers(min_value=0, max_value=300),
             max_size=8).map(tuple))


@settings(max_examples=60, deadline=None)
@given(st.dictionaries(_deweys, _scores, max_size=80))
def test_random_lists_round_trip(entries):
    postings = [(".".join(str(part) for part in (doc_id, *path)),
                 entries[(doc_id, path)])
                for doc_id, path in sorted(entries)]
    block = encode_postings(postings)
    assert decode_postings(block) == postings
    reader = PostingBlock(block)
    expected_max: dict[int, float] = {}
    for dewey, score in postings:
        doc_id = int(dewey.split(".")[0])
        if score > expected_max.get(doc_id, float("-inf")):
            expected_max[doc_id] = score
    assert reader.doc_max_scores() == expected_max
