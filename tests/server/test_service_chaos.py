"""Chaos acceptance test: one shard failing 100% under concurrent load
must yield zero non-deadline errors -- every affected query either
succeeds degraded (shard omitted, visibly) or is shed -- and full
fidelity must resume after the breaker cooldown.

The service core is driven directly from plain threads (the asyncio
front-end only adds transport); the failing shard is a toggleable
100%-transient wrapper around its read store, and the breaker clock is
manual, so the whole trip/cooldown/recover cycle runs without sleeping.
"""

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core.config import XRANK, XOntoRankConfig
from repro.core.query.federated import FederatedEngine
from repro.core.query.results import SearchOutcome
from repro.core.stats import (SERVER_BREAKER_RESETS,
                              SERVER_BREAKER_TRIPS,
                              SERVER_DEGRADED_RESPONSES, StatsRegistry)
from repro.server import SearchService
from repro.storage.errors import TransientStorageError
from repro.storage.interface import IndexStore
from repro.storage.memory_store import MemoryStore

VOCABULARY = {"patient", "aspirin", "pain", "heart", "blood"}
QUERIES = sorted(VOCABULARY)
SHARDS = 2
#: A tiny capacity-0 cache forces every query through the read store,
#: so shard faults are visible at query time (the breaker's food).
CONFIG = XOntoRankConfig(dil_cache_capacity=0)


class ToggleFaultStore(IndexStore):
    """Delegating store whose reads fail 100% while ``failing``."""

    def __init__(self, inner: IndexStore) -> None:
        self._inner = inner
        self.failing = False
        self._lock = threading.Lock()
        self.faulted_reads = 0

    def _guard(self) -> None:
        if self.failing:
            with self._lock:
                self.faulted_reads += 1
            raise TransientStorageError("injected: shard store down")

    def get_postings(self, strategy, keyword):
        self._guard()
        return self._inner.get_postings(strategy, keyword)

    def keywords(self, strategy):
        self._guard()
        return self._inner.keywords(strategy)

    def posting_count(self, strategy, keyword):
        self._guard()
        return self._inner.posting_count(strategy, keyword)

    def put_postings(self, strategy, keyword, postings):
        self._inner.put_postings(strategy, keyword, postings)

    def put_document(self, doc_id, xml_text):
        self._inner.put_document(doc_id, xml_text)

    def get_document(self, doc_id):
        self._guard()
        return self._inner.get_document(doc_id)

    def document_ids(self):
        self._guard()
        return self._inner.document_ids()

    def delete_document(self, doc_id):
        self._inner.delete_document(doc_id)

    def put_metadata(self, key, value):
        self._inner.put_metadata(key, value)

    def get_metadata(self, key, default=None):
        self._guard()
        return self._inner.get_metadata(key, default)

    def metadata_keys(self):
        self._guard()
        return self._inner.metadata_keys()

    def close(self):
        self._inner.close()


class ManualClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


@pytest.fixture(scope="module")
def shard_stores(cda_corpus):
    """Per-shard persisted indexes of the test vocabulary."""
    builder_engine = FederatedEngine(cda_corpus, None, strategy=XRANK,
                                     shards=SHARDS)
    stores = [MemoryStore() for _ in range(SHARDS)]
    builder_engine.build_index(vocabulary=set(VOCABULARY),
                               stores=stores)
    return stores


def make_service(cda_corpus, shard_stores):
    """A fresh serving stack: read-through engine, toggleable shard 1,
    manual breaker clock."""
    stats = StatsRegistry()
    engine = FederatedEngine(cda_corpus, None, strategy=XRANK,
                             shards=SHARDS, config=CONFIG, stats=stats)
    toggle = ToggleFaultStore(shard_stores[1])
    engine.attach_read_stores([shard_stores[0], toggle])
    clock = ManualClock()
    service = SearchService(stats=stats, breaker_threshold=3,
                            breaker_cooldown=5.0, clock=clock)
    service.add_corpus("emr", engine)
    return service, engine, toggle, clock


class TestChaosAcceptance:
    def test_one_failing_shard_degrades_never_errors(self, cda_corpus,
                                                     shard_stores):
        service, engine, toggle, clock = make_service(cda_corpus,
                                                      shard_stores)

        # Phase 1 -- healthy: read-through serving is exact.
        baseline_full = {}
        baseline_degraded = {}
        for query in QUERIES:
            outcome = service.execute("emr", query, k=5)
            assert outcome.exact, f"healthy serving degraded: {query}"
            baseline_full[query] = outcome.results
            baseline_degraded[query] = engine.search_outcome(
                query, 5, skip_shards={1}).results

        # Phase 2 -- shard 1 fails 100% under concurrent load.
        toggle.failing = True
        jobs = [QUERIES[index % len(QUERIES)] for index in range(40)]

        def hit(query: str) -> tuple[str, SearchOutcome]:
            # No deadline: the only allowed failure mode would be
            # DeadlineExceeded, so nothing may raise here at all.
            return query, service.execute("emr", query, k=5)

        with ThreadPoolExecutor(max_workers=8) as pool:
            outcomes = list(pool.map(hit, jobs))

        for query, outcome in outcomes:
            # Zero non-deadline errors: every query succeeded, shard 1
            # visibly omitted, and what was served is exactly the
            # healthy shards' answer.
            assert outcome.degraded_shards == (1,)
            assert outcome.results == baseline_degraded[query]
        stats = service.stats
        assert stats.value(SERVER_BREAKER_TRIPS) >= 1
        assert stats.value(SERVER_DEGRADED_RESPONSES) >= len(jobs)
        assert toggle.faulted_reads >= 1

        # Once open, the breaker keeps load off the dead shard: more
        # queries add no store reads.
        faulted_before = toggle.faulted_reads
        for query in QUERIES:
            outcome = service.execute("emr", query, k=5)
            assert outcome.degraded_shards == (1,)
        assert toggle.faulted_reads == faulted_before

        # Phase 3 -- the shard recovers; after the cooldown the next
        # request is the probe and full fidelity resumes immediately.
        toggle.failing = False
        clock.now = 100.0
        outcome = service.execute("emr", QUERIES[0], k=5)
        assert outcome.degraded_shards == ()
        assert outcome.results == baseline_full[QUERIES[0]]
        assert stats.value(SERVER_BREAKER_RESETS) >= 1
        for query in QUERIES:  # and it stays healthy
            assert service.execute("emr", query,
                                   k=5).results == baseline_full[query]

    def test_unknown_corpus_raises_not_found(self, cda_corpus,
                                             shard_stores):
        service, _, _, _ = make_service(cda_corpus, shard_stores)
        from repro.server import UnknownCorpusError
        with pytest.raises(UnknownCorpusError):
            service.execute("nope", "patient", k=5)

    def test_single_engine_corpus_degrades_as_one_shard(self,
                                                        cda_corpus):
        # A plain engine is one breaker: repeated storage failures
        # yield degraded-empty answers, not exceptions.
        from repro.core.query.engine import XOntoRankEngine

        class ExplodingEngine(XOntoRankEngine):
            def search_outcome(self, query, k=None, *, deadline=None):
                raise TransientStorageError("store down")

        stats = StatsRegistry()
        engine = ExplodingEngine(cda_corpus, None, strategy=XRANK)
        service = SearchService(stats=stats, breaker_threshold=2,
                                breaker_cooldown=5.0,
                                clock=ManualClock())
        service.add_corpus("solo", engine)
        for _ in range(5):
            outcome = service.execute("solo", "patient", k=3)
            assert outcome.results == []
            assert outcome.degraded_shards == (0,)
        assert stats.value(SERVER_BREAKER_TRIPS) == 1
