"""Unit tests for the serving primitives: admission control, the
per-shard circuit breaker, and single-flight coalescing."""

import asyncio

import pytest

from repro.core.deadline import DeadlineExceeded
from repro.core.stats import (SERVER_ADMITTED, SERVER_BREAKER_FAILURES,
                              SERVER_BREAKER_PROBES,
                              SERVER_BREAKER_RESETS,
                              SERVER_BREAKER_TRIPS, SERVER_COALESCED,
                              SERVER_SHED, StatsRegistry)
from repro.server import (CLOSED, HALF_OPEN, OPEN, AdmissionController,
                          CircuitBreaker, Coalescer)


class ManualClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class TestAdmissionController:
    def test_capacity_is_pool_plus_queue(self):
        admission = AdmissionController(2, 3)
        assert admission.capacity == 5

    def test_admits_until_full_then_sheds(self):
        stats = StatsRegistry()
        admission = AdmissionController(1, 1, stats=stats)
        assert admission.try_admit()
        assert admission.try_admit()
        assert not admission.try_admit()  # both tokens taken: shed
        assert stats.value(SERVER_ADMITTED) == 2
        assert stats.value(SERVER_SHED) == 1
        admission.release()
        assert admission.try_admit()  # token returned: admits again
        assert admission.in_flight == 2

    def test_release_without_admit_rejected(self):
        admission = AdmissionController(1)
        with pytest.raises(RuntimeError):
            admission.release()

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            AdmissionController(0)
        with pytest.raises(ValueError):
            AdmissionController(1, -1)


class TestCircuitBreaker:
    def make(self, **kwargs):
        clock = ManualClock()
        stats = StatsRegistry()
        breaker = CircuitBreaker(failure_threshold=3, cooldown=2.0,
                                 clock=clock, stats=stats, **kwargs)
        return breaker, clock, stats

    def test_trips_after_consecutive_failures(self):
        breaker, _, stats = self.make()
        assert breaker.state == CLOSED
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED  # below threshold
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()
        assert stats.value(SERVER_BREAKER_TRIPS) == 1
        assert stats.value(SERVER_BREAKER_FAILURES) == 3

    def test_success_resets_the_consecutive_count(self):
        breaker, _, _ = self.make()
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED  # the run was broken

    def test_single_probe_after_cooldown(self):
        breaker, clock, stats = self.make()
        for _ in range(3):
            breaker.record_failure()
        assert not breaker.allow()  # cooling down
        clock.now = 2.0
        assert breaker.allow()      # the probe slot
        assert not breaker.allow()  # concurrent requests stay skipped
        assert breaker.state == HALF_OPEN
        assert stats.value(SERVER_BREAKER_PROBES) == 1

    def test_probe_success_closes(self):
        breaker, clock, stats = self.make()
        for _ in range(3):
            breaker.record_failure()
        clock.now = 2.0
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allow()
        assert stats.value(SERVER_BREAKER_RESETS) == 1

    def test_probe_failure_retrips_for_another_cooldown(self):
        breaker, clock, stats = self.make()
        for _ in range(3):
            breaker.record_failure()
        clock.now = 2.0
        assert breaker.allow()
        breaker.record_failure()  # the probe failed
        assert breaker.state == OPEN
        assert not breaker.allow()       # new cooldown running
        clock.now = 3.0
        assert not breaker.allow()
        clock.now = 4.0
        assert breaker.allow()           # next probe
        assert stats.value(SERVER_BREAKER_TRIPS) == 2

    def test_stale_probe_slot_is_handed_over(self):
        # A probe whose request died without reporting (deadline
        # expiry is breaker-neutral) must not skip the shard forever.
        breaker, clock, _ = self.make()
        for _ in range(3):
            breaker.record_failure()
        clock.now = 2.0
        assert breaker.allow()      # probe starts ... and vanishes
        clock.now = 3.9
        assert not breaker.allow()  # still within the probe's window
        clock.now = 4.0
        assert breaker.allow()      # stale: the slot is reissued

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown=-1.0)


class TestCoalescer:
    def run(self, coroutine):
        return asyncio.run(coroutine)

    def test_identical_inflight_queries_share_one_evaluation(self):
        stats = StatsRegistry()
        coalescer = Coalescer(stats=stats)
        calls = []

        async def scenario():
            started = asyncio.Event()

            async def evaluate():
                calls.append(1)
                started.set()
                await asyncio.sleep(0.01)
                return "answer"

            async def leader():
                return await coalescer.run("key", evaluate)

            async def follower():
                await started.wait()  # guaranteed to overlap
                return await coalescer.run("key", evaluate)

            return await asyncio.gather(leader(), follower(),
                                        follower())

        results = self.run(scenario())
        assert results == ["answer"] * 3
        assert len(calls) == 1
        assert stats.value(SERVER_COALESCED) == 2

    def test_distinct_keys_do_not_coalesce(self):
        coalescer = Coalescer()
        calls = []

        async def scenario():
            async def evaluate(key):
                calls.append(key)
                await asyncio.sleep(0.01)
                return key

            return await asyncio.gather(
                coalescer.run("a", lambda: evaluate("a")),
                coalescer.run("b", lambda: evaluate("b")))

        assert self.run(scenario()) == ["a", "b"]
        assert sorted(calls) == ["a", "b"]

    def test_follower_timeout_leaves_leader_running(self):
        coalescer = Coalescer()

        async def scenario():
            started = asyncio.Event()

            async def evaluate():
                started.set()
                await asyncio.sleep(0.05)
                return "slow answer"

            async def leader():
                return await coalescer.run("key", evaluate)

            async def impatient_follower():
                await started.wait()
                with pytest.raises(DeadlineExceeded):
                    await coalescer.run("key", evaluate,
                                        timeout=0.001)
                return "timed out"

            return await asyncio.gather(leader(),
                                        impatient_follower())

        leader_result, follower_result = self.run(scenario())
        assert leader_result == "slow answer"  # undisturbed
        assert follower_result == "timed out"

    def test_leader_exception_propagates_to_followers(self):
        coalescer = Coalescer()

        async def scenario():
            started = asyncio.Event()

            async def evaluate():
                started.set()
                await asyncio.sleep(0.01)
                raise RuntimeError("boom")

            async def leader():
                with pytest.raises(RuntimeError):
                    await coalescer.run("key", evaluate)

            async def follower():
                await started.wait()
                with pytest.raises(RuntimeError):
                    await coalescer.run("key", evaluate)

            await asyncio.gather(leader(), follower())

        self.run(scenario())

    def test_key_is_released_after_completion(self):
        coalescer = Coalescer()

        async def scenario():
            async def evaluate():
                return 1

            assert coalescer.leading("key")
            await coalescer.run("key", evaluate)
            assert coalescer.leading("key")  # next arrival leads again
            assert coalescer.inflight == 0

        self.run(scenario())
