"""HTTP integration: a real ServerApp on a real socket, driven with
``http.client``. Covers the endpoint contract (search parity with the
library, lifecycle endpoints, error statuses), load shedding,
coalescing, deadline 504s, and the graceful drain."""

import asyncio
import json
import threading
import time
from http.client import HTTPConnection

import pytest

from repro.core.config import XRANK
from repro.core.query.engine import XOntoRankEngine
from repro.core.query.results import SearchOutcome
from repro.server import SearchService, ServerApp, ServerConfig

SLOW_DELAY = 0.3


class SlowEngine:
    """A stub corpus whose queries take a fixed wall-clock time --
    the deterministic prop for shed/coalesce/deadline tests."""

    def __init__(self, delay: float = SLOW_DELAY) -> None:
        self.delay = delay
        self.calls = 0
        self._lock = threading.Lock()

    def search_outcome(self, query, k=None, *, deadline=None):
        with self._lock:
            self.calls += 1
        time.sleep(self.delay)
        if deadline is not None:
            deadline.check("slow engine")
        return SearchOutcome(results=[])


class ServerThread:
    """One ServerApp on an ephemeral port, on a background loop."""

    def __init__(self, service, config: ServerConfig) -> None:
        self.app = ServerApp(service, config)
        self.port: int | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._started = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        await self.app.start()
        self.port = self.app.bound_port
        self.app.mark_ready()
        self._started.set()
        await self._stop.wait()
        await self.app.drain()

    def start(self) -> "ServerThread":
        self._thread.start()
        assert self._started.wait(10), "server failed to start"
        return self

    def stop(self) -> None:
        if self._loop is not None and self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(15)
        assert not self._thread.is_alive(), "drain did not finish"

    def request(self, path: str, method: str = "GET",
                timeout: float = 15.0):
        connection = HTTPConnection("127.0.0.1", self.port,
                                    timeout=timeout)
        try:
            connection.request(method, path)
            response = connection.getresponse()
            body = response.read()
            headers = {name.lower(): value
                       for name, value in response.getheaders()}
            return response.status, headers, body
        finally:
            connection.close()

    def get_json(self, path: str):
        status, headers, body = self.request(path)
        return status, headers, json.loads(body)


@pytest.fixture(scope="module")
def engine(figure1_corpus):
    return XOntoRankEngine(figure1_corpus, None, strategy=XRANK)


@pytest.fixture(scope="module")
def slow_engine():
    return SlowEngine()


@pytest.fixture(scope="module")
def server(engine, slow_engine):
    service = SearchService()
    service.add_corpus("default", engine)
    service.add_corpus("slow", slow_engine)
    fixture = ServerThread(service, ServerConfig(
        port=0, max_concurrency=4, max_queue=8,
        default_timeout_ms=5000)).start()
    yield fixture
    fixture.stop()


class TestEndpoints:
    def test_healthz(self, server):
        status, _, body = server.request("/healthz")
        assert (status, body) == (200, b"ok\n")

    def test_readyz(self, server):
        status, _, body = server.request("/readyz")
        assert (status, body) == (200, b"ready\n")

    def test_search_matches_the_library(self, server, engine):
        status, headers, body = server.get_json(
            "/search?q=cancer&k=3")
        assert status == 200
        expected = engine.search("cancer", k=3)
        assert [entry["dewey"] for entry in body["results"]] \
            == [result.dewey.encode() for result in expected]
        assert [entry["score"] for entry in body["results"]] \
            == pytest.approx([result.score for result in expected])
        assert body["partial"] is False
        assert body["degraded_shards"] == []
        assert "x-degraded-shards" not in headers
        assert "x-partial" not in headers

    def test_missing_query_is_400(self, server):
        assert server.request("/search")[0] == 400

    def test_bad_k_is_400(self, server):
        assert server.request("/search?q=x&k=zero")[0] == 400
        assert server.request("/search?q=x&k=0")[0] == 400

    def test_unknown_route_is_404(self, server):
        assert server.request("/nope")[0] == 404

    def test_unknown_corpus_is_404(self, server):
        assert server.request("/search?q=x&corpus=missing")[0] == 404

    def test_post_is_405(self, server):
        assert server.request("/search?q=x", method="POST")[0] == 405

    def test_metrics_scrape(self, server):
        server.request("/search?q=cancer&k=1")
        status, _, body = server.get_json("/metrics")
        assert status == 200
        assert body["counters"]["server.requests"] >= 1
        assert body["server"]["ready"] is True
        assert body["server"]["corpora"]["default"]["breakers"] \
            == ["closed"]
        assert "server.request_seconds" in body["timers"]
        assert isinstance(body["epoch"], int)

    def test_deadline_maps_to_504(self, server):
        status, _, body = server.get_json(
            "/search?q=timeoutcase&corpus=slow&timeout_ms=50")
        assert status == 504
        assert "deadline" in body["error"]


class TestLoadBehavior:
    def test_load_shedding_answers_429(self, engine, slow_engine):
        service = SearchService()
        service.add_corpus("slow", slow_engine)
        tiny = ServerThread(service, ServerConfig(
            port=0, max_concurrency=1, max_queue=0,
            default_timeout_ms=5000)).start()
        try:
            statuses = {}

            def fire(name: str) -> None:
                statuses[name] = tiny.request(
                    f"/search?q={name}&corpus=slow")[0]

            first = threading.Thread(target=fire, args=("occupier",))
            first.start()
            time.sleep(SLOW_DELAY / 3)  # the worker is busy now
            status, headers, _ = tiny.request(
                "/search?q=distinct&corpus=slow")
            first.join()
            assert statuses["occupier"] == 200
            assert status == 429
            assert "retry-after" in headers
        finally:
            tiny.stop()

    def test_identical_queries_coalesce(self, server, slow_engine):
        before = slow_engine.calls
        metrics_before = server.get_json("/metrics")[2]["counters"]
        results = {}

        def fire(name: str) -> None:
            results[name] = server.request(
                "/search?q=popular&corpus=slow&k=7")

        threads = [threading.Thread(target=fire, args=(f"t{i}",))
                   for i in range(3)]
        threads[0].start()
        time.sleep(SLOW_DELAY / 3)  # leader is definitely in flight
        for thread in threads[1:]:
            thread.start()
        for thread in threads:
            thread.join()
        assert {status for status, _, _ in results.values()} == {200}
        assert slow_engine.calls == before + 1  # one evaluation
        counters = server.get_json("/metrics")[2]["counters"]
        assert counters["server.coalesced"] \
            >= metrics_before.get("server.coalesced", 0) + 2


class TestDrain:
    def test_drain_finishes_inflight_then_closes(self, engine):
        service = SearchService()
        service.add_corpus("slow", SlowEngine(delay=0.5))
        fixture = ServerThread(service, ServerConfig(
            port=0, max_concurrency=2, max_queue=2,
            default_timeout_ms=5000, drain_grace=5.0)).start()
        port = fixture.port
        outcome = {}

        def slow_request() -> None:
            outcome["response"] = fixture.request(
                "/search?q=inflight&corpus=slow")

        worker = threading.Thread(target=slow_request)
        worker.start()
        time.sleep(0.15)  # request is in flight
        fixture.stop()    # drain must wait for it
        worker.join()
        assert outcome["response"][0] == 200
        with pytest.raises(OSError):
            HTTPConnection("127.0.0.1", port, timeout=1).request(
                "GET", "/healthz")


class TestNarrativeParam:
    @pytest.fixture(scope="class")
    def onto_server(self, figure1_corpus, core_ontology):
        service = SearchService()
        service.add_corpus("default",
                           XOntoRankEngine(figure1_corpus, core_ontology))
        fixture = ServerThread(service, ServerConfig(
            port=0, max_concurrency=4, max_queue=8,
            default_timeout_ms=5000)).start()
        yield fixture
        fixture.stop()

    def test_narrative_param_maps_and_annotates(self, onto_server,
                                                figure1_corpus,
                                                core_ontology):
        status, _, body = onto_server.get_json(
            "/search?q=asthma+and+medications&narrative=1&k=3")
        assert status == 200
        reference = XOntoRankEngine(figure1_corpus, core_ontology)
        reference.enable_narrative()
        expected = reference.search_outcome("asthma and medications", k=3)
        assert [entry["dewey"] for entry in body["results"]] \
            == [result.dewey.encode() for result in expected.results]
        assert body["narrative"]["mapped_query"] \
            == str(expected.narrative.query)
        methods = {entry["method"]
                   for entry in body["narrative"]["mappings"]}
        assert "exact" in methods

    def test_narrative_off_is_byte_identical(self, onto_server,
                                             figure1_corpus,
                                             core_ontology):
        status, _, body = onto_server.get_json("/search?q=asthma&k=3")
        assert status == 200
        assert "narrative" not in body
        plain = XOntoRankEngine(figure1_corpus, core_ontology)
        assert [entry["dewey"] for entry in body["results"]] \
            == [result.dewey.encode()
                for result in plain.search("asthma", k=3)]

    def test_narrative_without_ontology_is_400(self, server):
        # The module server's default corpus runs bare XRANK -- no
        # terminology, so the mapping is unavailable, not silent.
        status, _, body = server.get_json(
            "/search?q=asthma&narrative=1")
        assert status == 400
        assert "narrative" in body["error"]
