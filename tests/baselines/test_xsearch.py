"""Unit tests for the XSEarch interconnection baseline."""

import pytest

from repro.baselines.xsearch import XSEarchEvaluator
from repro.xmldoc.model import Corpus
from repro.xmldoc.parser import parse_document


def corpus_of(*xml_texts):
    return Corpus([parse_document(text, doc_id=index)
                   for index, text in enumerate(xml_texts)])


class TestInterconnection:
    def test_related_nodes_connect(self):
        corpus = corpus_of(
            "<patient><name>maria</name><drug>amiodarone</drug>"
            "</patient>")
        results = XSEarchEvaluator(corpus).search("maria amiodarone")
        assert results

    def test_repeated_tag_on_path_breaks_connection(self):
        """Two <patient> siblings: a name from one and a drug from the
        other must NOT form an answer (the classic XSEarch example)."""
        corpus = corpus_of(
            "<doc>"
            "<patient><name>maria</name><drug>digoxin</drug></patient>"
            "<patient><name>juan</name><drug>amiodarone</drug></patient>"
            "</doc>")
        results = XSEarchEvaluator(corpus).search("maria amiodarone")
        assert results == []

    def test_within_entity_pair_still_connects(self):
        corpus = corpus_of(
            "<doc>"
            "<patient><name>maria</name><drug>digoxin</drug></patient>"
            "<patient><name>juan</name><drug>amiodarone</drug></patient>"
            "</doc>")
        results = XSEarchEvaluator(corpus).search("juan amiodarone")
        assert len(results) == 1
        assert results[0].connector.encode() == "0.1"

    def test_ancestor_descendant_always_connect(self):
        corpus = corpus_of(
            "<doc><entry>asthma<code>theophylline</code></entry></doc>")
        results = XSEarchEvaluator(corpus).search("asthma theophylline")
        assert results

    def test_cda_nesting_defeats_interconnection(self, figure1_corpus):
        """The paper's conclusion: CDA's repeated component/section/
        entry chains make XSEarch's test reject related content."""
        evaluator = XSEarchEvaluator(figure1_corpus)
        # Theophylline (Medications entry) and temperature (Vital Signs
        # narrative) live under distinct repeated 'component'/'section'
        # chains, so no interconnected tuple exists.
        assert evaluator.search("theophylline pulse") == []

    def test_missing_keyword(self):
        corpus = corpus_of("<doc><a>asthma</a></doc>")
        assert XSEarchEvaluator(corpus).search("asthma zebra") == []


class TestRankingAndFragments:
    def test_smaller_spans_rank_first(self):
        corpus = corpus_of(
            "<doc><near>asthma theophylline</near>"
            "<far><x><deep>asthma</deep></x><y>theophylline</y></far>"
            "</doc>")
        results = XSEarchEvaluator(corpus).search("asthma theophylline")
        assert results[0].size <= results[-1].size

    def test_fragment_connects_the_tuple(self):
        corpus = corpus_of(
            "<doc><s><a>asthma</a><noise/><b>theophylline</b></s></doc>")
        evaluator = XSEarchEvaluator(corpus)
        result = evaluator.search("asthma theophylline")[0]
        fragment = evaluator.fragment(result)
        text = fragment.subtree_text()
        assert "asthma" in text and "theophylline" in text
        assert fragment.find("noise") is None

    def test_candidate_cap_respected(self):
        many = "".join(f"<e>asthma theophylline {i}</e>"
                       for i in range(40))
        corpus = corpus_of(f"<doc>{many}</doc>")
        evaluator = XSEarchEvaluator(corpus)
        results = evaluator.search("asthma theophylline")
        # Bounded candidate sets keep the combinatorics finite.
        assert len(results) <= evaluator.MAX_CANDIDATES ** 2
