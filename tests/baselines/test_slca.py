"""Unit tests for the smallest-LCA baseline."""

import pytest

from repro.baselines.slca import SLCAEvaluator
from repro.xmldoc.model import Corpus
from repro.xmldoc.parser import parse_document


def corpus_of(*xml_texts):
    return Corpus([parse_document(text, doc_id=index)
                   for index, text in enumerate(xml_texts)])


class TestSLCASemantics:
    def test_single_smallest_subtree(self):
        corpus = corpus_of(
            "<doc><s><a>asthma</a><b>theophylline</b></s><t/></doc>")
        results = SLCAEvaluator(corpus).search("asthma theophylline")
        assert [r.dewey.encode() for r in results] == ["0.0"]

    def test_excludes_ancestors_of_covering_subtrees(self):
        corpus = corpus_of(
            "<doc><s><a>asthma</a><b>theophylline</b></s>"
            "<u>asthma</u></doc>")
        results = SLCAEvaluator(corpus).search("asthma theophylline")
        encodings = {r.dewey.encode() for r in results}
        # The root also covers both keywords (via <u> and <b>) but
        # contains the <s> SLCA, so it is excluded.
        assert encodings == {"0.0"}

    def test_two_independent_slcas(self):
        corpus = corpus_of(
            "<doc><s1><a>asthma</a><b>theophylline</b></s1>"
            "<s2><a>asthma</a><b>theophylline</b></s2></doc>")
        results = SLCAEvaluator(corpus).search("asthma theophylline")
        assert {r.dewey.encode() for r in results} == {"0.0", "0.1"}

    def test_single_node_match(self):
        corpus = corpus_of("<doc><a>asthma theophylline</a></doc>")
        results = SLCAEvaluator(corpus).search("asthma theophylline")
        assert [r.dewey.encode() for r in results] == ["0.0"]

    def test_missing_keyword_no_results(self):
        corpus = corpus_of("<doc><a>asthma</a></doc>")
        assert SLCAEvaluator(corpus).search("asthma theophylline") == []

    def test_phrase_matching(self):
        corpus = corpus_of(
            "<doc><a>cardiac arrest</a><b>arrest cardiac</b></doc>")
        results = SLCAEvaluator(corpus).search('"cardiac arrest"')
        assert [r.dewey.encode() for r in results] == ["0.0"]

    def test_ranking_by_size(self):
        corpus = corpus_of(
            "<doc><big><x><a>asthma</a></x><y><b>theophylline</b></y>"
            "</big><small>asthma theophylline</small></doc>")
        results = SLCAEvaluator(corpus).search("asthma theophylline",
                                               k=2)
        assert results[0].size <= results[1].size
        assert results[0].dewey.encode() == "0.1"

    def test_results_across_documents(self):
        corpus = corpus_of(
            "<doc><a>asthma theophylline</a></doc>",
            "<doc><b>asthma</b><c>theophylline</c></doc>")
        results = SLCAEvaluator(corpus).search("asthma theophylline")
        assert {r.dewey.doc_id for r in results} == {0, 1}

    def test_blind_to_ontology_matches(self, figure1_corpus):
        """The paper's point: exact-match semantics cannot answer the
        intro query."""
        evaluator = SLCAEvaluator(figure1_corpus)
        assert evaluator.search(
            '"bronchial structure" theophylline') == []
        assert evaluator.search("asthma medications")  # textual pair


class TestFragment:
    def test_fragment_extraction(self):
        corpus = corpus_of(
            "<doc><s><a>asthma</a><b>theophylline</b></s></doc>")
        result = SLCAEvaluator(corpus).search("asthma theophylline")[0]
        fragment = result.fragment(corpus)
        assert fragment.tag == "s"
