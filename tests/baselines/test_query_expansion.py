"""Unit tests for the query-expansion baseline."""

import pytest

from repro import XRANK, RELATIONSHIPS, XOntoRankEngine
from repro.baselines.query_expansion import (ExpandedXRankSearch,
                                             QueryExpander)
from repro.ir.tokenizer import Keyword, KeywordQuery
from repro.ontology import snomed
from repro.ontology.snomed import build_core_ontology
from repro.cda import build_figure1_document
from repro.xmldoc import Corpus


@pytest.fixture(scope="module")
def expander():
    return QueryExpander(build_core_ontology(),
                         max_expansions_per_keyword=3)


class TestExpander:
    def test_original_keyword_kept_first(self, expander):
        alternatives = expander.expansions(Keyword.from_text("asthma"))
        assert alternatives[0].text == "asthma"

    def test_related_terms_added(self, expander):
        alternatives = expander.expansions(Keyword.from_text("asthma"))
        texts = {keyword.text for keyword in alternatives}
        assert len(texts) > 1
        # One-hop neighbors of Asthma include its superclass and its
        # finding site.
        assert texts & {"disorder of bronchus", "bronchial structure",
                        "asthma attack"}

    def test_unknown_term_unexpanded(self, expander):
        alternatives = expander.expansions(Keyword.from_text("zebra"))
        assert [keyword.text for keyword in alternatives] == ["zebra"]

    def test_limit_respected(self):
        expander = QueryExpander(build_core_ontology(),
                                 max_expansions_per_keyword=1)
        alternatives = expander.expansions(Keyword.from_text("asthma"))
        assert len(alternatives) <= 2  # original + 1 expansion

    def test_expand_query_is_cartesian(self, expander):
        query = KeywordQuery.parse("asthma theophylline")
        variants = expander.expand_query(query)
        first = len(expander.expansions(Keyword.from_text("asthma")))
        second = len(expander.expansions(
            Keyword.from_text("theophylline")))
        assert len(variants) == first * second

    def test_validation(self):
        with pytest.raises(ValueError):
            QueryExpander(build_core_ontology(),
                          max_expansions_per_keyword=-1)
        with pytest.raises(ValueError):
            QueryExpander(build_core_ontology(), hops=0)


class TestExpandedSearch:
    @pytest.fixture(scope="class")
    def corpus(self):
        return Corpus([build_figure1_document()])

    def test_requires_xrank_engine(self, corpus):
        ontology = build_core_ontology()
        engine = XOntoRankEngine(corpus, ontology,
                                 strategy=RELATIONSHIPS)
        with pytest.raises(ValueError):
            ExpandedXRankSearch(engine, QueryExpander(ontology))

    def test_recovers_ontology_only_match(self, corpus):
        """Expansion substitutes 'bronchial structure' with related
        concept terms, letting plain XRANK answer the intro query."""
        ontology = build_core_ontology()
        engine = XOntoRankEngine(corpus, None, strategy=XRANK)
        search = ExpandedXRankSearch(
            engine, QueryExpander(ontology,
                                  max_expansions_per_keyword=6))
        assert engine.search('"bronchial structure" theophylline') == []
        expanded = search.search('"bronchial structure" theophylline',
                                 k=5)
        assert expanded
        assert search.last_report.variants_executed > 1

    def test_merging_deduplicates(self, corpus):
        ontology = build_core_ontology()
        engine = XOntoRankEngine(corpus, None, strategy=XRANK)
        search = ExpandedXRankSearch(
            engine, QueryExpander(ontology,
                                  max_expansions_per_keyword=4))
        results = search.search("asthma medications", k=20)
        deweys = [result.dewey for result in results]
        assert len(deweys) == len(set(deweys))
        report = search.last_report
        assert report.raw_results >= report.merged_results
        assert report.redundancy >= 1.0
