"""Setup shim for environments without the wheel package.

``pip install -e .`` needs to build a PEP 660 editable wheel, which this
offline environment cannot (no ``wheel`` distribution). ``python
setup.py develop`` achieves the same editable install through the legacy
path. All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
