"""Persistent indexes: build once, query from a SQLite store.

Mirrors the paper's deployment split (Figure 8): the pre-processing
phase builds XOnto-DILs and persists them (the paper used SQL Server;
we use SQLite), and the query phase serves searches from the stored
lists without touching the ontology again.

Run with: ``python examples/persistent_index.py [path.db]``
"""

import os
import sys
import tempfile
import time

from repro import RELATIONSHIPS, XOntoRankEngine
from repro.cda import build_cda_corpus
from repro.emr import generate_cardiac_emr
from repro.ontology import TerminologyService, build_synthetic_snomed
from repro.storage import SQLiteStore


def main() -> None:
    path = sys.argv[1] if len(sys.argv) > 1 else os.path.join(
        tempfile.mkdtemp(prefix="xontorank-"), "index.db")

    ontology = build_synthetic_snomed()
    terminology = TerminologyService([ontology])
    database = generate_cardiac_emr(n_patients=20, seed=7,
                                    ontology=ontology)
    corpus, _ = build_cda_corpus(database, terminology)

    print(f"Pre-processing phase -> {path}")
    engine = XOntoRankEngine(corpus, ontology, strategy=RELATIONSHIPS)
    vocabulary = {"asthma", "theophylline", "amiodarone", "arrest",
                  "cardiac", "effusion", "fever", "acetaminophen",
                  "coarctation", "cyanosis"}
    started = time.perf_counter()
    with SQLiteStore(path) as store:
        index = engine.build_index(vocabulary=vocabulary, store=store)
    elapsed = time.perf_counter() - started
    print(f"  built {len(index)} XOnto-DILs, "
          f"{index.total_postings()} postings, "
          f"{index.total_size_bytes() / 1024:.1f} KB in {elapsed:.2f}s")

    print("Query phase (fresh engine, index loaded from the store)")
    fresh = XOntoRankEngine(corpus, ontology, strategy=RELATIONSHIPS)
    with SQLiteStore(path) as store:
        loaded = fresh.load_index(store)
        print(f"  loaded {loaded} posting lists")
    for query in ("asthma theophylline", '"cardiac arrest" amiodarone'):
        results = fresh.search(query, k=3)
        print(f"  {query!r}: {len(results)} results; top score "
              f"{results[0].score:.3f}" if results else
              f"  {query!r}: no results")
    print(f"Index database left at {path}")


if __name__ == "__main__":
    main()
