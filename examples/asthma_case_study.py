"""Case study: how OntoScore flows through the Figure 2 subgraph.

Walks the paper's worked examples step by step, printing the OntoScore
hash-map slices each strategy computes for the keywords of Section IV:

* Graph (IV-A): ``decay^d`` per undirected hop;
* Taxonomy (IV-B): free downward flow, 1/N upward splits;
* Relationships (IV-C): the description-logic view with dotted links.

Run with: ``python examples/asthma_case_study.py``
"""

from repro.core.ontoscore import (GraphOntoScore, RelationshipsOntoScore,
                                  TaxonomyOntoScore, concept_seed_scorer,
                                  relationships_seed_scorer)
from repro.ir import Keyword
from repro.ontology import DLView, build_core_ontology, snomed


def show_scores(title, ontology, scores, limit=10):
    print(f"\n  {title}: {len(scores)} concepts above threshold")
    ranked = sorted(scores.items(), key=lambda item: -item[1])[:limit]
    for code, score in ranked:
        name = (ontology.concept(code).preferred_term
                if code in ontology else code)
        print(f"    {score:6.3f}  {name}")


def main() -> None:
    ontology = build_core_ontology()
    print("Figure 2 neighborhood:")
    print(f"  Asthma is-a {[ontology.concept(p).preferred_term for p in ontology.parents(snomed.ASTHMA)]}")
    print(f"  Asthma direct subclasses: {ontology.subclass_count(snomed.ASTHMA)} (paper: 26)")
    print(f"  Asthma finding sites: "
          f"{[edge.destination for edge in ontology.outgoing(snomed.ASTHMA, snomed.FINDING_SITE_OF)]}")

    concept_seeds = concept_seed_scorer(ontology)
    relationship_seeds = relationships_seed_scorer(ontology)
    graph = GraphOntoScore(ontology, concept_seeds)
    taxonomy = TaxonomyOntoScore(ontology, concept_seeds)
    relationships = RelationshipsOntoScore(ontology, relationship_seeds)

    keyword = Keyword.from_text('"bronchial structure"')
    print(f"\n=== OntoScores for keyword {keyword} ===")
    show_scores("Graph", ontology, graph.compute(keyword))
    show_scores("Taxonomy", ontology, taxonomy.compute(keyword))
    show_scores("Relationships", ontology, relationships.compute(keyword))

    keyword = Keyword.from_text("asthma")
    print(f"\n=== OntoScores for keyword {keyword} ===")
    show_scores("Taxonomy", ontology, taxonomy.compute(keyword))

    print("\n=== The description-logic view (Section IV-C) ===")
    view = DLView(ontology)
    print(f"  {view.stats()}")
    code = "exists:finding-site-of:" + snomed.BRONCHIAL_STRUCTURE
    node = view.node(code)
    print(f"  restriction node: {node.name}")
    subclasses = [ontology.concept(child).preferred_term
                  for child in view.children(code)][:8]
    print(f"  concepts subsumed by it ({view.subclass_count(code)}): "
          f"{subclasses} ...")

    print("\n=== The acetaminophen/aspirin trap (Section VII-A) ===")
    keyword = Keyword.from_text("acetaminophen")
    scores = relationships.compute(keyword)
    aspirin = scores.get(snomed.ASPIRIN, 0.0)
    print(f"  OS(Aspirin, 'acetaminophen') = {aspirin:.3f} -- reachable "
          "through the shared pain-control context,")
    print("  which is precisely the clinically wrong mapping the "
          "paper's expert rejected.")


if __name__ == "__main__":
    main()
