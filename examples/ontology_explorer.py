"""Ontology tooling tour: axioms, flat files, terminology lookups.

Shows the substrate the search engine stands on:

* the EL axioms behind the graph (Section IV-C's reading of SNOMED);
* RF2-shaped flat-file export/import (the form the paper's SNOMED API
  consumed);
* terminology-service lookups (the UMLS-API substitute used during CDA
  generation).

Run with: ``python examples/ontology_explorer.py``
"""

import os
import tempfile

from repro.ontology import (TerminologyService, build_core_ontology,
                            load_ontology, ontology_axioms, save_ontology,
                            snomed)


def main() -> None:
    ontology = build_core_ontology()

    print("=== EL axioms (Section IV-C) ===")
    ontology_names = {concept.code: concept.preferred_term
                      for concept in ontology.concepts()}

    def pretty(expression_text: str) -> str:
        for code, name in ontology_names.items():
            expression_text = expression_text.replace(code, name)
        return expression_text

    shown = 0
    for axiom in ontology_axioms(ontology):
        if axiom.subclass.code in (snomed.ASTHMA, snomed.ASTHMA_ATTACK,
                                   snomed.BRONCHITIS):
            print(f"  {pretty(str(axiom))}")
            shown += 1
    assert shown >= 3

    print("\n=== Flat-file round trip (RF2-shaped) ===")
    directory = tempfile.mkdtemp(prefix="snomed-rf2-")
    save_ontology(ontology, directory)
    for name in sorted(os.listdir(directory)):
        size = os.path.getsize(os.path.join(directory, name))
        print(f"  {name:<22} {size:>8} bytes")
    reloaded = load_ontology(directory)
    print(f"  reloaded: {reloaded.stats() == ontology.stats()} "
          f"({reloaded.stats()['concepts']} concepts)")

    print("\n=== Terminology service (UMLS-API substitute) ===")
    service = TerminologyService([ontology])
    for term in ("asthma", "regurgitant flow", "paracetamol"):
        concepts = service.lookup_term(term)
        print(f"  lookup({term!r}) -> "
              f"{[(c.code, c.preferred_term) for c in concepts]}")
    text = ("Patient with supraventricular tachycardia started on "
            "amiodarone after an episode of cardiac arrest")
    print(f"  annotate({text!r}):")
    for phrase, concept in service.match_in_text(text):
        print(f"    {phrase!r} -> {concept.preferred_term} "
              f"({concept.code})")


if __name__ == "__main__":
    main()
