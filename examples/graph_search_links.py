"""Graph search over ID/reference edges (Section III's forward pointer).

The paper's tree algorithms ignore ID-IDREF edges but note the ontology
techniques "are straightforwardly applicable to graph search
algorithms". This example shows exactly that handoff:

1. the Figure 1 document contains one intra-document link — the Asthma
   observation's ``originalText`` points at the Theophylline narrative
   (``reference value="m1"`` / ``ID="m1"``);
2. the tree engine answers ``asthma theophylline`` with the Medications
   section (the LCA pays containment decay);
3. the graph engine reuses the *same* Eq. 5 NodeScorer but may travel
   the reference edge, anchoring a tighter answer;
4. swapping in the Relationships strategy transfers OntoScores into the
   graph algorithm unchanged — the intro query works there too.

Run with: ``python examples/graph_search_links.py``
"""

from repro import RELATIONSHIPS, XRANK, XOntoRankEngine
from repro.cda import build_figure1_document
from repro.core.query.graph_search import GraphSearchEngine
from repro.ontology import build_core_ontology
from repro.xmldoc import Corpus


def main() -> None:
    ontology = build_core_ontology()
    corpus = Corpus([build_figure1_document()])

    tree_engine = XOntoRankEngine(corpus, ontology,
                                  strategy=RELATIONSHIPS)
    graph_engine = GraphSearchEngine(corpus,
                                     tree_engine.builder.node_scorer)
    print(f"document link edges: {graph_engine.link_edge_count} "
          "(the m1 originalText reference)")

    query = "asthma theophylline"
    print(f"\n=== {query!r} ===")
    tree_results = tree_engine.search(query, k=2)
    print("tree semantics (Eq. 1):")
    for result in tree_results:
        print(f"  {result.dewey.encode()}  score={result.score:.3f}")
    print("graph semantics (containment + reference edges):")
    for result in graph_engine.search(query, k=3):
        flag = ("  [evidence outside the root subtree]"
                if result.escapes_subtree else "")
        print(f"  root={result.root.encode()} score={result.score:.3f}"
              f" evidence={[e.encode() for e in result.evidence]}{flag}")

    query = '"bronchial structure" theophylline'
    print(f"\n=== {query!r} (ontology-bridged) ===")
    plain_base = XOntoRankEngine(corpus, None, strategy=XRANK)
    plain_graph = GraphSearchEngine(corpus,
                                    plain_base.builder.node_scorer)
    print(f"graph search without ontology: "
          f"{len(plain_graph.search(query, k=5))} results")
    aware = graph_engine.search(query, k=3)
    print(f"graph search with Relationships OntoScores: "
          f"{len(aware)} results")
    for result in aware:
        print(f"  root={result.root.encode()} score={result.score:.3f}")


if __name__ == "__main__":
    main()
