"""End-to-end hospital scenario: the paper's full pipeline (Figure 8).

1. Generate the synthetic SNOMED and a 40-patient pediatric-cardiology
   EMR database;
2. convert it to a CDA corpus, inserting ontological references wherever
   the text matches SNOMED concepts (Section VII's corpus generation);
3. build one engine per strategy and compare them on a slice of the
   published query workload, judged by the relevance oracle.

Run with: ``python examples/hospital_search.py``
"""

from repro import build_engines
from repro.cda import build_cda_corpus
from repro.emr import generate_cardiac_emr
from repro.evaluation import RelevanceOracle, run_survey, table1_queries
from repro.ontology import TerminologyService, build_synthetic_snomed


def main() -> None:
    print("Building synthetic SNOMED ...")
    ontology = build_synthetic_snomed()
    print(f"  {ontology.stats()}")
    terminology = TerminologyService([ontology])

    print("Generating the cardiac division's EMR database ...")
    database = generate_cardiac_emr(n_patients=40, seed=7,
                                    ontology=ontology)
    print(f"  {database.stats()}")

    print("Converting to CDA documents ...")
    corpus, report = build_cda_corpus(database, terminology)
    print(f"  {report.documents} documents, "
          f"{report.average_elements:.0f} elements/doc, "
          f"{report.average_references:.0f} ontological references/doc")

    print("Building engines (xrank / graph / taxonomy / relationships)")
    engines = build_engines(corpus, ontology)
    oracle = RelevanceOracle(ontology, terminology)

    print("\nQuery workload (top-5 per strategy, oracle-judged):")
    names = list(engines)
    header = f"{'query':<50}" + "".join(f"{name:>15}" for name in names)
    print(header)
    print("-" * len(header))
    totals = dict.fromkeys(names, 0)
    queries = table1_queries()
    for workload_query in queries:
        row = run_survey(engines, oracle, workload_query.text,
                         workload_query.query_id)
        cells = "".join(f"{row.counts[name]:>15}" for name in names)
        print(f"{workload_query.text:<50}" + cells)
        for name in names:
            totals[name] += row.counts[name]
    print("-" * len(header))
    print(f"{'AVERAGE':<50}" + "".join(
        f"{totals[name] / len(queries):>15.2f}" for name in names))

    print("\nSample answer (Relationships strategy):")
    engine = engines["relationships"]
    results = engine.search('"cardiac arrest" amiodarone', k=1)
    if results:
        print(engine.fragment_text(results[0]))


if __name__ == "__main__":
    main()
