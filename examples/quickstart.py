"""Quickstart: ontology-aware search over the paper's own sample record.

Builds the Figure 1 CDA document and the curated SNOMED core, then runs
the two queries the paper uses as running examples:

* ``asthma medications`` -- both keywords occur textually; the engine
  returns the Figure 4 Observation fragment.
* ``"Bronchial Structure" Theophylline`` -- the phrase "Bronchial
  Structure" appears nowhere in the document, so keyword search alone
  finds nothing; the ontology's finding-site-of relationship between
  Asthma and Bronchial Structure bridges the gap (the paper's
  motivating scenario, Section I).

Run with: ``python examples/quickstart.py``
"""

from repro import RELATIONSHIPS, XRANK, XOntoRankEngine
from repro.cda import build_figure1_document
from repro.ontology import build_core_ontology
from repro.xmldoc import Corpus


def show_results(engine: XOntoRankEngine, query: str, limit: int = 3,
                 ) -> None:
    results = engine.search(query, k=limit)
    print(f"  {len(results)} result(s)")
    for rank, result in enumerate(results, start=1):
        print(f"  #{rank}  score={result.score:.3f}  "
              f"element={result.dewey.encode()}")
        fragment = engine.fragment_text(result)
        for line in fragment.splitlines()[:6]:
            print(f"      {line}")
        if len(fragment.splitlines()) > 6:
            print("      ...")


def main() -> None:
    ontology = build_core_ontology()
    corpus = Corpus([build_figure1_document()])
    print(f"Corpus: {len(corpus)} document(s), "
          f"{corpus.total_nodes()} XML elements")
    print(f"Ontology: {ontology.stats()}")

    baseline = XOntoRankEngine(corpus, None, strategy=XRANK)
    engine = XOntoRankEngine(corpus, ontology, strategy=RELATIONSHIPS)

    print("\n=== Query: asthma medications (exact-match friendly) ===")
    show_results(engine, "asthma medications")

    query = '"bronchial structure" theophylline'
    print(f"\n=== Query: {query} ===")
    print("XRANK baseline (no ontology):")
    show_results(baseline, query)
    print("XOntoRank Relationships strategy:")
    show_results(engine, query)


if __name__ == "__main__":
    main()
