# syntax=docker/dockerfile:1
# Always-on XOntoRank search service (docs/SERVING.md).
#
# Stage 1 builds a wheel and bakes a small demo corpus + persisted
# index so the image serves out of the box; stage 2 is a slim,
# non-root runtime. For real corpora, mount your own data directory
# and store and override the command:
#
#   docker run -v /my/data:/data xontorank \
#       python -m repro serve --data /data --store /data/index.db \
#       --host 0.0.0.0 --port 8080

FROM python:3.12-slim AS build
WORKDIR /build
COPY pyproject.toml setup.py README.md ./
COPY src ./src
RUN pip wheel --no-deps --wheel-dir /build/wheels .
# Demo payload: a tiny generated EMR corpus and its crash-safe index.
RUN pip install --no-deps /build/wheels/*.whl \
    && python -m repro generate --out /build/data --patients 12 --seed 11 \
    && python -m repro index --data /build/data --store /build/data/index.db \
        --strategy relationships

FROM python:3.12-slim
RUN useradd --create-home --uid 10001 serve
COPY --from=build /build/wheels /tmp/wheels
RUN pip install --no-cache-dir --no-deps /tmp/wheels/*.whl \
    && rm -rf /tmp/wheels
COPY --from=build --chown=serve:serve /build/data /home/serve/data
USER serve
WORKDIR /home/serve
EXPOSE 8080
HEALTHCHECK --interval=15s --timeout=3s --start-period=30s --retries=3 \
    CMD ["python", "-c", "import urllib.request,sys; sys.exit(0 if urllib.request.urlopen('http://127.0.0.1:8080/healthz', timeout=2).status == 200 else 1)"]
# SIGTERM (docker stop) triggers the graceful drain; exec form keeps
# the python process as PID 1 so the signal actually reaches it.
CMD ["python", "-m", "repro", "serve", "--data", "/home/serve/data", \
     "--store", "/home/serve/data/index.db", "--strategy", "relationships", \
     "--host", "0.0.0.0", "--port", "8080"]
